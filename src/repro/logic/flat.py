"""Tuple-encoded ("flat") kernels for the engine's three hottest loops.

Profiling the rewriting engine on the Table 1 workloads shows three pure
functions dominating the compile path: WL colour refinement behind the
canonical interning key (:mod:`repro.logic.canonical`), the backtracking
homomorphism search behind subsumption and variant checks
(:mod:`repro.logic.homomorphism`), and MGU computation behind every
rewriting step (:mod:`repro.logic.unification`).  All three walk frozen
dataclass objects (``Atom``, ``Variable``, ``Constant``) and re-hash the
same terms over and over — and the homomorphism search copies its whole
binding dict once per candidate atom.

Each function is pure over immutable inputs, so the inputs can be
*encoded once* into packed integer form and the inner loops run over
``list``/``tuple`` of ``int`` — no per-step allocation, no dataclass
hashing, integer comparisons only:

* variables become small non-negative indices in first-occurrence order;
* ground terms (constants, labelled nulls) become negative identifiers;
* predicates become dense local ids (with their ``(name, arity)`` keys
  kept alongside wherever output order depends on them);
* an atom becomes a predicate id plus a packed tuple of term codes.

The encodings never escape: every public function of the three logic
modules still accepts and returns the ordinary term/atom/substitution
objects, and each flat kernel is held — by the property tests in
``tests/logic/test_flat_agreement.py`` and the ``make perf-smoke``
gate — to reproduce the object-based reference implementations *byte for
byte*: identical canonical keys, identical homomorphism enumerations
(same mappings in the same order), identical MGUs.

Three guarantees make that byte-identity provable rather than hopeful:

1. **Monotone predicate ids** (canonical refinement): per-query predicate
   ids are assigned in sorted ``(name, arity)`` order, so comparisons of
   int ids order exactly like comparisons of the original keys and every
   dense colour rank of the reference refinement is reproduced.
2. **Same traversal order** (homomorphism search): atoms keep the
   reference's most-constrained-first sort and candidates keep target
   order, so the flat depth-first search visits — and therefore yields —
   mappings in the reference order; bindings are undone via an explicit
   trail instead of copying the binding dict per candidate.
3. **Same union order** (MGU): the flat union-find replays the reference
   pair order and its root-selection rule (rigid terms win, otherwise
   the left root points at the right), so the binding map has identical
   content.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from .atoms import Atom
from .substitution import Substitution
from .terms import Constant, Term, Variable, is_variable

__all__ = [
    "FlatQuery",
    "FlatTarget",
    "encode_query",
    "flat_mgu",
    "refine_colors",
    "search_homomorphisms",
]


# -- canonical refinement ----------------------------------------------------


class FlatQuery:
    """A CQ packed for colour refinement: int codes only in the hot loop.

    ``variables[i]`` is the variable with code ``i`` (first-occurrence
    order over the head, then the body — the order the reference
    ``_prepare`` enumerates them in).  Ground terms carry the code
    ``-1 - rank`` with ranks assigned over ``repr``-sorted terms, exactly
    like the reference constant ids, so variable codes (``>= 0``) and
    ground codes (``< 0``) never clash inside a refinement context.
    Predicate ids are dense *and monotone* in ``(name, arity)`` order —
    the property that makes every sort over flat occurrence tuples agree
    with the reference sort over ``(name, arity)`` keys.
    """

    __slots__ = (
        "variables",
        "constant_terms",
        "predicate_keys",
        "templates",
        "head_codes",
        "initial_colors",
    )

    def __init__(
        self,
        variables: tuple[Variable, ...],
        constant_terms: tuple[Term, ...],
        predicate_keys: tuple[tuple[str, int], ...],
        templates: tuple[tuple[int, tuple[int, ...]], ...],
        head_codes: tuple[int, ...],
        initial_colors: list[int],
    ) -> None:
        self.variables = variables
        self.constant_terms = constant_terms
        self.predicate_keys = predicate_keys
        self.templates = templates
        self.head_codes = head_codes
        self.initial_colors = initial_colors


def encode_query(query) -> FlatQuery:
    """Encode *query* (anything with ``body`` and ``answer_terms``) once.

    Single pass over the head and body: variables, ground terms and
    predicates are interned in first-encounter order while the raw
    template rows are built, then ground codes are patched to ``repr``
    rank and predicate ids to ``(name, arity)`` rank in one cheap
    renumbering sweep (int operations only) — one dict probe per term
    instead of two.  The encoding is a pure function of the query's
    presentation; all invariance (renaming, atom order) comes from
    :func:`refine_colors` and the fingerprint assembly on top.
    """
    variable_type = Variable

    var_codes: dict[Variable, int] = {}
    head_positions: list[list[int]] = []
    counts: list[int] = []
    ground_ids: dict[Term, int] = {}  # first-encounter ids, reranked below
    ground_list: list[Term] = []
    head_raw: list[int] = []
    answer_terms = tuple(query.answer_terms)
    for index, term in enumerate(answer_terms):
        if type(term) is variable_type:
            code = var_codes.get(term)
            if code is None:
                code = len(counts)
                var_codes[term] = code
                head_positions.append([index])
                counts.append(1)
            else:
                head_positions[code].append(index)
                counts[code] += 1
            head_raw.append(code)
        else:
            gid = ground_ids.get(term)
            if gid is None:
                gid = len(ground_list)
                ground_ids[term] = gid
                ground_list.append(term)
            head_raw.append(-1 - gid)

    predicate_ids: dict[object, int] = {}  # first-encounter, reranked below
    predicate_list: list[object] = []
    raw_templates: list[tuple[int, tuple[int, ...]]] = []
    for atom in query.body:
        predicate = atom.predicate
        pid = predicate_ids.get(predicate)
        if pid is None:
            pid = len(predicate_list)
            predicate_ids[predicate] = pid
            predicate_list.append(predicate)
        row: list[int] = []
        for term in atom.terms:
            if type(term) is variable_type:
                code = var_codes.get(term)
                if code is None:
                    code = len(counts)
                    var_codes[term] = code
                    head_positions.append([])
                    counts.append(1)
                else:
                    counts[code] += 1
                row.append(code)
            else:
                gid = ground_ids.get(term)
                if gid is None:
                    gid = len(ground_list)
                    ground_ids[term] = gid
                    ground_list.append(term)
                row.append(-1 - gid)
        raw_templates.append((pid, tuple(row)))

    # Patch ground codes to repr-rank order — equal across variants, like
    # the reference constant ids (variants share their ground terms).
    if ground_list:
        order = sorted(range(len(ground_list)), key=lambda i: repr(ground_list[i]))
        ground_remap = [0] * len(ground_list)
        constants: list[Term] = []
        for rank, gid in enumerate(order):
            ground_remap[gid] = -1 - rank
            constants.append(ground_list[gid])
        constant_terms = tuple(constants)
    else:
        ground_remap = []
        constant_terms = ()

    # Patch predicate ids to be monotone in sorted (name, arity) order, so
    # int id comparisons agree with the reference's key comparisons.
    count = len(predicate_list)
    identity_pids = True
    if count > 1:
        pred_order = sorted(
            range(count),
            key=lambda i: (predicate_list[i].name, predicate_list[i].arity),
        )
        predicate_remap = [0] * count
        keys: list[tuple[str, int]] = []
        for new_pid, old_pid in enumerate(pred_order):
            predicate_remap[old_pid] = new_pid
            if old_pid != new_pid:
                identity_pids = False
            predicate = predicate_list[old_pid]
            keys.append((predicate.name, predicate.arity))
        predicate_keys = tuple(keys)
    else:
        predicate_remap = [0] * count
        predicate_keys = tuple((p.name, p.arity) for p in predicate_list)

    if ground_list:
        templates = tuple(
            (
                predicate_remap[pid],
                tuple(
                    [c if c >= 0 else ground_remap[-1 - c] for c in row]
                ),
            )
            for pid, row in raw_templates
        )
        head_codes = tuple(
            [c if c >= 0 else ground_remap[-1 - c] for c in head_raw]
        )
    elif identity_pids:
        # Common shape: no constants and predicates already in sorted
        # order — the raw rows are the final templates.
        templates = tuple(raw_templates)
        head_codes = tuple(head_raw)
    else:
        templates = tuple(
            (predicate_remap[pid], row) for pid, row in raw_templates
        )
        head_codes = tuple(head_raw)

    # Initial colours: dense ranks of (head positions, occurrence count),
    # identical values to the reference pre-pass.
    signatures = [
        (tuple(head_positions[code]), counts[code])
        for code in range(len(counts))
    ]
    ordered = sorted(set(signatures))
    ranks = {signature: rank for rank, signature in enumerate(ordered)}
    initial_colors = [ranks[signature] for signature in signatures]

    return FlatQuery(
        variables=tuple(var_codes),
        constant_terms=constant_terms,
        predicate_keys=predicate_keys,
        templates=templates,
        head_codes=head_codes,
        initial_colors=initial_colors,
    )


def refine_colors(flat: FlatQuery) -> list[int]:
    """WL colour refinement over the packed encoding.

    Reproduces the reference ``_refine`` exactly: each round collects,
    per variable, the sorted multiset of its occurrences ``(predicate id,
    position, context colours)`` and re-ranks ``(colour, occurrences)``
    signatures densely — int tuples all the way down, ordered like the
    reference's ``((name, arity), ...)`` tuples because predicate ids are
    monotone.
    """
    colors = list(flat.initial_colors)
    total = len(colors)
    if total == 0:
        return colors
    templates = flat.templates
    distinct = len(set(colors))
    for _ in range(total):
        if distinct == total:
            break
        occurrences: list[list[tuple]] = [[] for _ in range(total)]
        for predicate_id, codes in templates:
            context = tuple(
                colors[code] if code >= 0 else code for code in codes
            )
            for position, code in enumerate(codes):
                if code >= 0:
                    occurrences[code].append((predicate_id, position, context))
        signatures = [
            (colors[index], tuple(sorted(occurrences[index])))
            for index in range(total)
        ]
        ordered = sorted(set(signatures))
        ranks = {signature: rank for rank, signature in enumerate(ordered)}
        colors = [ranks[signature] for signature in signatures]
        refined = len(set(colors))
        if refined == distinct:
            break
        distinct = refined
    return colors


# -- homomorphism search -----------------------------------------------------


class FlatTarget:
    """An interned, read-only target side for homomorphism probes.

    Target terms are interned to dense ids and every target atom becomes
    a packed id row, grouped per predicate in target order.  The object
    is *frozen after construction*: repeated probes against the same
    target (subsumption removal probes quadratically) share one encoding,
    and because nothing mutates, sharing is safe across threads.  Terms
    a particular probe introduces beyond the target (source constants,
    ``partial`` images) are interned into a per-call local extension.
    """

    __slots__ = ("term_ids", "terms", "rows")

    def __init__(
        self, index: Mapping[object, Sequence[Atom]]
    ) -> None:
        term_ids: dict[Term, int] = {}
        terms: list[Term] = []
        rows: dict[object, list[tuple[int, ...]]] = {}
        for predicate, atoms in index.items():
            encoded = []
            for atom in atoms:
                row = []
                for term in atom.terms:
                    code = term_ids.get(term)
                    if code is None:
                        code = len(terms)
                        term_ids[term] = code
                        terms.append(term)
                    row.append(code)
                encoded.append(tuple(row))
            rows[predicate] = encoded
        self.term_ids = term_ids
        self.terms = terms
        self.rows = rows


def search_homomorphisms(
    source_atoms: Sequence[Atom],
    index: Mapping[object, Sequence[Atom]],
    base: Mapping[Term, Term],
    target: FlatTarget | None = None,
) -> Iterator[dict[Term, Term]]:
    """Enumerate homomorphism mappings with a trail-undo flat search.

    *source_atoms* must already be in the caller's search order (the
    reference most-constrained-first sort); *base* is the fixed partial
    mapping (``partial`` plus frozen self-mappings).  Yields complete
    mapping dicts (base entries included) in exactly the order the
    reference dict-copying search would produce them, deduplicated.
    """
    if target is None:
        target = FlatTarget(index)
    term_ids = target.term_ids
    target_terms = target.terms
    rows = target.rows
    frozen_size = len(target_terms)
    constant_type = Constant

    # Per-call extension of the interning table: terms that do not occur
    # in the target can never match a target id, but they still need ids
    # (base images must materialise back into the yielded mapping).
    local_ids: dict[Term, int] = {}
    local_terms: list[Term] = []

    # Encode the source side: constants become required ids (packed as
    # ``-1 - id``), every other term becomes a slot index.
    slot_ids: dict[Term, int] = {}
    atom_rows: list[Sequence[tuple[int, ...]]] = []
    atom_codes: list[list[int]] = []
    for atom in source_atoms:
        codes: list[int] = []
        for term in atom.terms:
            if type(term) is constant_type:
                tid = term_ids.get(term)
                if tid is None:
                    tid = local_ids.get(term)
                    if tid is None:
                        tid = frozen_size + len(local_terms)
                        local_ids[term] = tid
                        local_terms.append(term)
                codes.append(-1 - tid)
            else:
                slot = slot_ids.get(term)
                if slot is None:
                    slot = len(slot_ids)
                    slot_ids[term] = slot
                codes.append(slot)
        atom_rows.append(rows.get(atom.predicate, ()))
        atom_codes.append(codes)

    assign = [-1] * len(slot_ids)
    if base:
        for term, slot in slot_ids.items():
            image = base.get(term)
            if image is not None:
                tid = term_ids.get(image)
                if tid is None:
                    tid = local_ids.get(image)
                    if tid is None:
                        tid = frozen_size + len(local_terms)
                        local_ids[image] = tid
                        local_terms.append(image)
                assign[slot] = tid

    total = len(atom_codes)
    # One shared undo trail for the whole search: each candidate records a
    # mark and pops back to it, so no per-candidate list is allocated.
    trail: list[int] = []
    trail_append = trail.append
    trail_pop = trail.pop

    def search(position: int) -> Iterator[tuple[int, ...]]:
        if position == total:
            yield tuple(assign)
            return
        codes = atom_codes[position]
        for row in atom_rows[position]:
            mark = len(trail)
            consistent = True
            for code, value in zip(codes, row):
                if code < 0:
                    if -1 - code != value:
                        consistent = False
                        break
                else:
                    bound = assign[code]
                    if bound < 0:
                        assign[code] = value
                        trail_append(code)
                    elif bound != value:
                        consistent = False
                        break
            if consistent:
                yield from search(position + 1)
            while len(trail) > mark:
                assign[trail_pop()] = -1

    def term_of(code: int) -> Term:
        if code < frozen_size:
            return target_terms[code]
        return local_terms[code - frozen_size]

    slot_terms = list(slot_ids)
    seen: set[tuple[int, ...]] = set()
    for assignment in search(0):
        if assignment in seen:
            continue
        seen.add(assignment)
        mapping: dict[Term, Term] = dict(base)
        for slot, code in enumerate(assignment):
            mapping[slot_terms[slot]] = term_of(code)
        yield mapping


# -- most general unifiers ---------------------------------------------------


def flat_mgu(atoms: Sequence[Atom]) -> Substitution | None:
    """MGU over a packed union-find: int parents instead of term dicts.

    Terms are interned once (dict probes happen once per distinct term,
    not once per find step); the union-find runs over parallel int lists
    with path compression.  Union order and root selection replay the
    reference exactly, so the binding map is identical in content.
    """
    atoms = list(atoms)
    if len(atoms) <= 1:
        return Substitution()
    first = atoms[0]
    predicate = first.predicate

    term_ids: dict[Term, int] = {}
    terms: list[Term] = []
    parent: list[int] = []
    var_flags: list[bool] = []

    def intern(term: Term) -> int:
        code = term_ids.get(term)
        if code is None:
            code = len(terms)
            term_ids[term] = code
            terms.append(term)
            parent.append(code)
            var_flags.append(is_variable(term))
        return code

    left_codes = [intern(term) for term in first.terms]
    for other in atoms[1:]:
        if other.predicate != predicate:
            return None
        for left, term in zip(left_codes, other.terms):
            right = intern(term)
            root_left = left
            while parent[root_left] != root_left:
                root_left = parent[root_left]
            while parent[left] != left:
                parent[left], left = root_left, parent[left]
            root_right = right
            while parent[root_right] != root_right:
                root_right = parent[root_right]
            while parent[right] != right:
                parent[right], right = root_right, parent[right]
            if root_left == root_right:
                continue
            if var_flags[root_left]:
                # Left root is a variable: it points at the right root
                # (which keeps rigid right roots as representatives).
                parent[root_left] = root_right
            elif var_flags[root_right]:
                parent[root_right] = root_left
            else:
                return None  # two distinct rigid terms in one class

    bindings: dict[Term, Term] = {}
    for code in range(len(terms)):
        root = parent[code]
        if root == code:
            continue
        while parent[root] != root:
            root = parent[root]
        cursor = code
        while parent[cursor] != cursor:
            parent[cursor], cursor = root, parent[cursor]
        bindings[terms[code]] = terms[root]
    return Substitution(bindings)
