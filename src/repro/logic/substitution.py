"""Substitutions: finite mappings from terms to terms.

A *substitution* ``γ`` maps variables (and, for homomorphisms, nulls) to
terms.  Constants are always fixed points.  Substitutions compose
(``(γ2 ∘ γ1)(t) = γ2(γ1(t))``) and can be applied to terms, atoms and
collections of atoms.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .atoms import Atom
from .terms import Term, Variable, is_constant


class Substitution(Mapping[Term, Term]):
    """An immutable substitution.

    The mapping's keys are variables or nulls; mapping a constant to anything
    other than itself raises :class:`ValueError` since constants denote fixed
    domain values (unique name assumption).
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Term, Term] | None = None) -> None:
        items: dict[Term, Term] = {}
        if mapping:
            for key, value in mapping.items():
                if is_constant(key) and key != value:
                    raise ValueError(f"cannot map constant {key!r} to {value!r}")
                if key != value:
                    items[key] = value
        self._mapping = items

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, key: Term) -> Term:
        return self._mapping.get(key, key)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, key: object) -> bool:
        return key in self._mapping

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._mapping == other._mapping
        if isinstance(other, Mapping):
            return self._mapping == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        if not self._mapping:
            return "{}"
        inner = ", ".join(f"{k} -> {v}" for k, v in sorted(
            self._mapping.items(), key=lambda kv: str(kv[0])))
        return "{" + inner + "}"

    # -- application --------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """Image of a single term (identity for unmapped terms)."""
        return self._mapping.get(term, term)

    def apply_atom(self, atom: Atom) -> Atom:
        """Image of an atom."""
        return Atom(atom.predicate, tuple(self.apply_term(t) for t in atom.terms))

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Image of a sequence of atoms, preserving order."""
        return tuple(self.apply_atom(a) for a in atoms)

    def __call__(self, obj):
        """Apply the substitution to a term, an atom or an iterable of atoms."""
        if isinstance(obj, Atom):
            return self.apply_atom(obj)
        if isinstance(obj, (list, tuple, set, frozenset)):
            applied = [self(x) for x in obj]
            if isinstance(obj, list):
                return applied
            if isinstance(obj, tuple):
                return tuple(applied)
            if isinstance(obj, set):
                return set(applied)
            return frozenset(applied)
        return self.apply_term(obj)

    # -- algebra -------------------------------------------------------------

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``other ∘ self`` (first apply *self*, then *other*).

        ``(other ∘ self)(t) = other(self(t))`` for every term ``t``.
        """
        combined: dict[Term, Term] = {}
        for key, value in self._mapping.items():
            combined[key] = other.apply_term(value)
        for key, value in other._mapping.items():
            if key not in combined:
                combined[key] = value
        return Substitution(combined)

    def extend(self, key: Term, value: Term) -> "Substitution":
        """Return a copy of the substitution with ``key -> value`` added.

        Raises :class:`ValueError` if *key* is already bound to a different
        term.
        """
        existing = self._mapping.get(key)
        if existing is not None and existing != value:
            raise ValueError(f"{key!r} already bound to {existing!r}")
        new = dict(self._mapping)
        if key != value:
            new[key] = value
        return Substitution(new)

    def restrict(self, keys: Iterable[Term]) -> "Substitution":
        """Return the substitution restricted to the given *keys*."""
        keys = set(keys)
        return Substitution({k: v for k, v in self._mapping.items() if k in keys})

    def domain(self) -> frozenset[Term]:
        """The set of terms that are explicitly (non-trivially) mapped."""
        return frozenset(self._mapping)

    def range(self) -> frozenset[Term]:
        """The set of images of the domain."""
        return frozenset(self._mapping.values())

    def is_renaming(self) -> bool:
        """``True`` iff the substitution is an injective map of variables to variables."""
        values = list(self._mapping.values())
        return (
            all(isinstance(k, Variable) for k in self._mapping)
            and all(isinstance(v, Variable) for v in values)
            and len(set(values)) == len(values)
        )

    def as_dict(self) -> dict[Term, Term]:
        """A plain-``dict`` copy of the non-trivial bindings."""
        return dict(self._mapping)


EMPTY_SUBSTITUTION = Substitution()
