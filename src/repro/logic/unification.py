"""Unification and most general unifiers (MGUs), with memoisation support.

Section 5 of the paper defines: a set of atoms ``A = {a1, ..., an}`` (n ≥ 2)
*unifies* if there exists a substitution ``γ`` (a *unifier*) such that
``γ(a1) = ... = γ(an)``; a *most general unifier* ``γA`` is a unifier such
that every other unifier factors through it.  The MGU of a singleton set is
the identity.

The implementation is the classical Robinson-style algorithm restricted to
function-free terms, which makes it linear in the number of term pairs:

* a variable unifies with anything (bind it);
* two constants unify iff they are equal;
* a constant never unifies with a labelled null (nulls in queries/TGDs do not
  occur; nulls are included for completeness when unifying instance atoms).

The rewriting engine asks the *same* unification question over and over
across the UCQ frontier: whether a candidate atom set of a query unifies
with a TGD head depends only on the *shape* of the atom set — its
predicates, its variable-equality pattern and its constants — never on the
variable names, and hundreds of generated CQs share a handful of shapes.
:func:`atom_sequence_profile` computes that shape as a hashable key
(variables become first-occurrence De Bruijn indices plus caller-chosen
markings) and :class:`UnificationMemo` is the keyed outcome table used by
:mod:`repro.core.applicability` to skip repeated MGU attempts.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Sequence

from .atoms import Atom
from .flat import flat_mgu
from .substitution import Substitution
from .terms import Term, is_constant, is_null, is_variable


def _find(representative: dict[Term, Term], term: Term) -> Term:
    """Union-find lookup with path compression."""
    root = term
    while representative.get(root, root) != root:
        root = representative[root]
    while representative.get(term, term) != term:
        representative[term], term = root, representative[term]
    return root


def _union(representative: dict[Term, Term], left: Term, right: Term) -> bool:
    """Merge the classes of *left* and *right*.

    Non-variable terms (constants, nulls) are preferred as class
    representatives.  Returns ``False`` on a clash (two distinct
    constants/nulls in the same class).
    """
    root_left = _find(representative, left)
    root_right = _find(representative, right)
    if root_left == root_right:
        return True
    left_rigid = not is_variable(root_left)
    right_rigid = not is_variable(root_right)
    if left_rigid and right_rigid:
        return False
    if left_rigid:
        representative[root_right] = root_left
    else:
        representative[root_left] = root_right
    return True


def unify_terms(pairs: Iterable[tuple[Term, Term]]) -> Substitution | None:
    """Compute an MGU for a set of term equations, or ``None`` if none exists."""
    representative: dict[Term, Term] = {}
    for left, right in pairs:
        if not _union(representative, left, right):
            return None
    bindings: dict[Term, Term] = {}
    for term in list(representative):
        root = _find(representative, term)
        if term != root:
            bindings[term] = root
    return Substitution(bindings)


def mgu(atoms: Sequence[Atom]) -> Substitution | None:
    """Most general unifier of a set/sequence of atoms.

    Returns ``None`` if the atoms do not unify (different predicates, clashing
    constants, ...).  For a singleton or empty sequence the identity
    substitution is returned, matching the paper's convention.

    Runs on the packed union-find of :func:`repro.logic.flat.flat_mgu`;
    the term-dict original is kept as :func:`mgu_reference` and the two
    are held equal by ``tests/logic/test_flat_agreement.py``.
    """
    return flat_mgu(atoms)


def mgu_reference(atoms: Sequence[Atom]) -> Substitution | None:
    """Object-based reference implementation of :func:`mgu`."""
    atoms = list(atoms)
    if len(atoms) <= 1:
        return Substitution()
    first = atoms[0]
    pairs: list[tuple[Term, Term]] = []
    for other in atoms[1:]:
        if other.predicate != first.predicate:
            return None
        pairs.extend(zip(first.terms, other.terms))
    return unify_terms(pairs)


def unifiable(atoms: Sequence[Atom]) -> bool:
    """``True`` iff the atoms admit a unifier."""
    return mgu(atoms) is not None


def unify_atoms(left: Atom, right: Atom) -> Substitution | None:
    """MGU of exactly two atoms (``None`` if they do not unify)."""
    return mgu([left, right])


def is_unifier(substitution: Substitution, atoms: Sequence[Atom]) -> bool:
    """Check that *substitution* maps all *atoms* to the same atom."""
    images = {substitution.apply_atom(a) for a in atoms}
    return len(images) <= 1


def rename_apart(
    atoms: Sequence[Atom], avoid: Iterable[Term], fresh_factory
) -> tuple[tuple[Atom, ...], Substitution]:
    """Rename the variables of *atoms* so they avoid the variables in *avoid*.

    Returns the renamed atoms together with the renaming substitution.  Used
    before resolving a TGD against a query so that the two have disjoint
    variables (assumed w.l.o.g. throughout Section 5 of the paper).
    """
    avoid_set = {t for t in avoid if is_variable(t)}
    renaming: dict[Term, Term] = {}
    for atom in atoms:
        for term in atom.terms:
            if is_variable(term) and term in avoid_set and term not in renaming:
                renaming[term] = fresh_factory()
    substitution = Substitution(renaming)
    return substitution.apply_atoms(atoms), substitution


#: A renaming-invariant shape of an atom sequence (see
#: :func:`atom_sequence_profile`): hashable, comparable, usable as a memo key.
AtomProfile = tuple


def atom_sequence_profile(
    atoms: Sequence[Atom], marked: AbstractSet[Term] = frozenset()
) -> AtomProfile:
    """A renaming-invariant, order-sensitive shape key for *atoms*.

    Two atom sequences receive equal profiles iff one maps onto the other
    by a bijective variable renaming that preserves membership in *marked*
    (and the order of the sequences).  Concretely, every variable is
    replaced by its first-occurrence index across the whole sequence plus a
    flag telling whether it belongs to *marked*; constants and nulls are
    kept by ``repr`` (they are rigid, so their identity matters).

    Every unification-shaped question is invariant under such renamings:
    whether the sequence unifies with a fixed (variable-disjoint) atom, and
    any property that additionally consults *marked* — the applicability
    condition of Definition 1 marks the query's shared variables, making
    the profile a sound memo key for the whole check, not only the MGU
    attempt (see :class:`repro.core.applicability.ApplicabilityMemo`).
    """
    indices: dict[Term, int] = {}
    rows = []
    for atom in atoms:
        labels = []
        for term in atom.terms:
            if is_variable(term):
                index = indices.setdefault(term, len(indices))
                labels.append((1, index, term in marked))
            else:
                labels.append((0, repr(term)))
        rows.append((atom.name, atom.arity, tuple(labels)))
    return tuple(rows)


class UnificationMemo:
    """A keyed outcome table for repeated unification-shaped questions.

    The memo stores arbitrary outcomes (booleans in practice) under
    caller-provided keys, typically ``(rule id, atom profile)`` pairs.  It
    deliberately knows nothing about rules or queries: the *caller* is
    responsible for choosing keys such that equal keys imply equal
    outcomes — :func:`atom_sequence_profile` provides the query half of
    such a key, a stable rule identifier the other half.

    ``hits``/``misses`` counters feed the ``unification_memo_*`` fields of
    :class:`repro.core.rewriter.RewritingStatistics`.
    """

    __slots__ = ("_table", "hits", "misses")

    _MISSING = object()

    def __init__(self) -> None:
        self._table: dict[object, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key: object, compute) -> object:
        """Return the memoised outcome for *key*, computing it on first use."""
        outcome = self._table.get(key, self._MISSING)
        if outcome is not self._MISSING:
            self.hits += 1
            return outcome
        self.misses += 1
        outcome = compute()
        self._table[key] = outcome
        return outcome


__all__ = [
    "AtomProfile",
    "UnificationMemo",
    "atom_sequence_profile",
    "mgu",
    "mgu_reference",
    "unifiable",
    "unify_atoms",
    "unify_terms",
    "is_unifier",
    "rename_apart",
]
