"""Symbolic substrate: terms, atoms, substitutions, unification, homomorphisms."""

from .atoms import (
    Atom,
    Position,
    Predicate,
    atoms_constants,
    atoms_predicates,
    atoms_terms,
    atoms_variables,
    term_occurrences,
)
from .homomorphism import (
    are_variants,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
    variable_bijections,
)
from .substitution import EMPTY_SUBSTITUTION, Substitution
from .terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    VariableFactory,
    is_constant,
    is_null,
    is_variable,
)
from .unification import is_unifier, mgu, rename_apart, unifiable, unify_atoms, unify_terms

__all__ = [
    "Atom",
    "Constant",
    "EMPTY_SUBSTITUTION",
    "Null",
    "NullFactory",
    "Position",
    "Predicate",
    "Substitution",
    "Term",
    "Variable",
    "VariableFactory",
    "are_variants",
    "atoms_constants",
    "atoms_predicates",
    "atoms_terms",
    "atoms_variables",
    "find_homomorphism",
    "has_homomorphism",
    "homomorphisms",
    "is_constant",
    "is_homomorphism",
    "is_null",
    "is_unifier",
    "is_variable",
    "mgu",
    "rename_apart",
    "term_occurrences",
    "unifiable",
    "unify_atoms",
    "unify_terms",
    "variable_bijections",
]
