"""repro — ontological query rewriting and optimisation for Datalog±.

A from-scratch reproduction of *Gottlob, Orsi & Pieris, "Ontological Queries:
Rewriting and Optimization", ICDE 2011* (extended version arXiv:1112.0343):

* the ``TGD-rewrite`` backward-chaining UCQ rewriting algorithm with its
  restricted factorisation step (Section 5);
* the query-elimination optimisation for linear TGDs (``TGD-rewrite*``,
  Section 6), built on dependency graphs, equality types and atom coverage;
* the supporting substrates: first-order terms and unification, conjunctive
  queries and containment, TGDs / negative constraints / key dependencies,
  Datalog± language classifiers, the chase, an in-memory relational engine
  with SQL export, DL-Lite_R translation, and the baseline rewriters
  (QuOnto-style, Requiem-style, chase & back-chase) used in the evaluation.

Quick start::

    from repro import Atom, ConjunctiveQuery, Variable, tgd, rewrite

    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    sigma = tgd(Atom.of("project", X), Atom.of("has_leader", X, Z))
    query = ConjunctiveQuery([Atom.of("has_leader", X, Y)], answer_terms=(X,))
    print(rewrite(query, [sigma]).ucq)
"""

from .api import (
    AnswerSet,
    ExecutionCacheInfo,
    InconsistentTheoryError,
    OBDASystem,
    PreparedCacheInfo,
    PreparedQuery,
    RewritingCacheInfo,
)
from .scheduling import (
    ChunkedProcessStrategy,
    SchedulingStrategy,
    SequentialStrategy,
    ThreadedStrategy,
    create_strategy,
)
from .backends import (
    BACKENDS,
    BackendError,
    ExecutionBackend,
    ExecutionPlan,
    InMemoryBackend,
    SQLiteBackend,
    create_backend,
)
from .cache import FrontierCheckpoint, RewritingStore, theory_fingerprint
from .parallel import compile_workloads
from .baselines import (
    ChaseBackchase,
    QuOntoStyleRewriter,
    ResolutionRewriter,
    quonto_rewrite,
    requiem_rewrite,
)
from .evaluation import (
    ANSWER_BACKENDS,
    SYSTEMS,
    AnswerMeasurement,
    AnsweringEvaluator,
    Table1Evaluator,
    evaluate_workload,
    format_rows,
)
from .ontology import DLLiteOntology, parse_ontology, to_theory
from .workloads import Workload, get_workload, workload_names
from .core import (
    CoverageChecker,
    DependencyGraph,
    QueryEliminator,
    RewritingBudgetExceeded,
    RewritingResult,
    RewritingStatistics,
    RuleIndex,
    TGDRewriter,
    eliminate,
    rewrite,
)
from .chase import ChaseEngine, ChaseResult, certain_answers, chase
from .database import (
    QueryEvaluator,
    Relation,
    RelationalInstance,
    RelationalSchema,
    cq_to_sql,
    database_from_tuples,
    evaluate,
    evaluate_ucq,
    random_database,
    ucq_to_sql,
)
from .dependencies import (
    KeyDependency,
    NegativeConstraint,
    OntologyTheory,
    TGD,
    classify,
    normalize,
    tgd,
    theory,
)
from .logic import Atom, Constant, Null, Predicate, Substitution, Variable
from .metrics import RewritingMetrics, format_table, metrics_table_row, ucq_metrics
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries, boolean_query, parse_query

__version__ = "1.0.0"

__all__ = [
    "ANSWER_BACKENDS",
    "AnswerMeasurement",
    "AnsweringEvaluator",
    "AnswerSet",
    "Atom",
    "BACKENDS",
    "BackendError",
    "ExecutionBackend",
    "ExecutionCacheInfo",
    "ExecutionPlan",
    "InMemoryBackend",
    "PreparedQuery",
    "SQLiteBackend",
    "create_backend",
    "ChaseBackchase",
    "ChaseEngine",
    "ChunkedProcessStrategy",
    "DLLiteOntology",
    "FrontierCheckpoint",
    "PreparedCacheInfo",
    "SchedulingStrategy",
    "SequentialStrategy",
    "ThreadedStrategy",
    "create_strategy",
    "QuOntoStyleRewriter",
    "ResolutionRewriter",
    "SYSTEMS",
    "Table1Evaluator",
    "Workload",
    "evaluate_workload",
    "format_rows",
    "get_workload",
    "parse_ontology",
    "parse_query",
    "quonto_rewrite",
    "requiem_rewrite",
    "to_theory",
    "workload_names",
    "ChaseResult",
    "ConjunctiveQuery",
    "Constant",
    "CoverageChecker",
    "DependencyGraph",
    "InconsistentTheoryError",
    "KeyDependency",
    "NegativeConstraint",
    "Null",
    "OBDASystem",
    "OntologyTheory",
    "Predicate",
    "QueryEliminator",
    "QueryEvaluator",
    "Relation",
    "RelationalInstance",
    "RelationalSchema",
    "RewritingBudgetExceeded",
    "RewritingCacheInfo",
    "RewritingMetrics",
    "RewritingStore",
    "theory_fingerprint",
    "RewritingResult",
    "RewritingStatistics",
    "RuleIndex",
    "Substitution",
    "TGD",
    "TGDRewriter",
    "UnionOfConjunctiveQueries",
    "Variable",
    "boolean_query",
    "certain_answers",
    "chase",
    "classify",
    "compile_workloads",
    "cq_to_sql",
    "database_from_tuples",
    "eliminate",
    "evaluate",
    "evaluate_ucq",
    "format_table",
    "metrics_table_row",
    "normalize",
    "random_database",
    "rewrite",
    "tgd",
    "theory",
    "ucq_metrics",
    "ucq_to_sql",
]
