"""Differential tests: the two execution backends must agree everywhere.

The in-memory evaluator is the executable reference implementation; the
SQLite backend runs the rewriting's actual SQL.  Identical answer sets on
every Table 1 workload query over randomized instances is the property
that makes the SQL path trustworthy.
"""

import pytest

from repro.api import OBDASystem
from repro.database.generator import DatabaseGenerator
from repro.workloads import get_workload

WORKLOADS = ("V", "S", "U", "A", "P5")


class TestTable1Agreement:
    """Every Table 1 workload query, on growing randomized instances."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_backends_agree_on_all_queries(self, name):
        workload = get_workload(name)
        system = OBDASystem(
            workload.theory, database=workload.abox(seed=0), use_nc_pruning=False
        )
        prepared = {
            (query_name, backend): system.prepare(
                workload.query(query_name), backend
            )
            for query_name in workload.query_names
            for backend in ("memory", "sqlite")
        }
        nonempty = 0
        for round_index, seed in enumerate((1, 2)):
            for query_name in workload.query_names:
                memory = prepared[(query_name, "memory")].execute().tuples
                sqlite = prepared[(query_name, "sqlite")].execute().tuples
                assert memory == sqlite, (
                    f"{name}/{query_name} disagrees on round {round_index}"
                )
                nonempty += bool(memory)
            # Grow the database (epoch bump) and re-check: exercises the
            # SQLite snapshot reload and the join-order refresh.
            for fact in workload.abox(seed=seed, facts_per_relation=8).facts:
                system.database.add(fact)
        assert nonempty > 0, "differential test never saw a non-empty answer set"
        system.close()

    def test_agreement_on_random_instances_over_rules(self):
        """Random instances straight from the generator (no ABox factory)."""
        workload = get_workload("S")
        for seed in range(4):
            generator = DatabaseGenerator(seed=seed)
            database = generator.populate_for_rules(
                list(workload.theory.tgds), facts_per_relation=12
            )
            system = OBDASystem(
                workload.theory, database=database, use_nc_pruning=False
            )
            for query_name in workload.query_names:
                query = workload.query(query_name)
                assert (
                    system.answer(query, backend="memory").tuples
                    == system.answer(query, backend="sqlite").tuples
                )
            system.close()

    def test_sqlite_agrees_with_the_chase_oracle(self):
        workload = get_workload("U")
        system = OBDASystem(workload.theory, database=workload.abox())
        for query_name in ("q1", "q2"):
            query = workload.query(query_name)
            sqlite_answers = system.answer(query, backend="sqlite").tuples
            assert sqlite_answers == system.answer_via_chase(query, max_depth=6)
        system.close()
