"""Prepared-query interning: the LRU bound and batched preparation."""

import pytest

from repro.api import OBDASystem
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.queries.parser import parse_query

X = Variable("X")


def _system(**kwargs):
    theory = OntologyTheory(
        tgds=[tgd(Atom.of("employee", X), Atom.of("person", X))]
    )
    system = OBDASystem(theory, use_nc_pruning=False, **kwargs)
    system.add_fact("person", ["alice"])
    system.add_fact("employee", ["bob"])
    return system


def _queries(count):
    return [parse_query(f"q(A) :- person(A), extra{i}(A)") for i in range(count)]


class TestPreparedLRU:
    def test_unbounded_by_default(self):
        system = _system()
        for query in _queries(5):
            system.prepare(query)
        info = system.prepared_cache_info()
        assert info.max_prepared is None
        assert info.size == 5 and info.evictions == 0

    def test_bound_evicts_least_recently_prepared(self):
        system = _system(max_prepared=2)
        first, second, third = _queries(3)
        handle = system.prepare(first)
        system.prepare(second)
        system.prepare(third)  # evicts `first`
        info = system.prepared_cache_info()
        assert info.size == 2 and info.evictions == 1
        # The evicted handle still works for whoever holds it...
        assert handle.execute() is not None
        # ...but re-preparing builds a fresh one.
        assert system.prepare(first) is not handle

    def test_repreparing_refreshes_recency(self):
        system = _system(max_prepared=2)
        first, second, third = _queries(3)
        kept = system.prepare(first)
        system.prepare(second)
        system.prepare(first)  # refresh: `second` is now the LRU entry
        system.prepare(third)
        assert system.prepare(first) is kept
        info = system.prepared_cache_info()
        assert info.evictions == 1

    def test_hit_and_miss_counters(self):
        system = _system()
        query = _queries(1)[0]
        system.prepare(query)
        system.prepare(query)
        system.prepare(query)
        info = system.prepared_cache_info()
        assert (info.hits, info.misses) == (2, 1)

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="max_prepared"):
            _system(max_prepared=0)

    def test_distinct_backends_count_separately(self):
        system = _system(max_prepared=2)
        query = _queries(1)[0]
        memory = system.prepare(query, backend="memory")
        sqlite = system.prepare(query, backend="sqlite")
        assert memory is not sqlite
        assert system.prepared_cache_info().size == 2
        system.close()


class TestPrepareMany:
    def test_returns_handles_in_input_order(self):
        system = _system()
        queries = _queries(4)
        prepared = system.prepare_many(queries)
        assert [handle.query for handle in prepared] == queries

    def test_duplicates_share_one_handle(self):
        system = _system()
        query = _queries(1)[0]
        first, second = system.prepare_many([query, query])
        assert first is second

    def test_shares_one_backend_instance(self):
        system = _system()
        prepared = system.prepare_many(_queries(3), backend="sqlite")
        backends = {id(handle.backend) for handle in prepared}
        assert len(backends) == 1
        # One snapshot serves every handle: executing them all loads once.
        for handle in prepared:
            handle.execute()
        assert system.backend_for("sqlite").full_loads == 1
        system.close()

    def test_equivalent_to_individual_prepare(self):
        batched = _system()
        individual = _system()
        queries = _queries(3)
        many = batched.prepare_many(queries)
        singles = [individual.prepare(query) for query in queries]
        for batch_handle, single_handle in zip(many, singles):
            assert batch_handle.execute().tuples == single_handle.execute().tuples

    def test_workers_argument_is_accepted(self):
        system = _system()
        prepared = system.prepare_many(_queries(2), workers=2)
        assert len(prepared) == 2
        for handle in prepared:
            handle.execute()
