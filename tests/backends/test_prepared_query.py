"""The prepare/execute lifecycle: epoch invalidation, caching, bindings."""

import pytest

from repro.api import OBDASystem
from repro.backends import InMemoryBackend, SQLiteBackend
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery

X, Y, A = Variable("X"), Variable("Y"), Variable("A")


def make_system() -> OBDASystem:
    theory = OntologyTheory(
        tgds=[
            tgd(Atom.of("manager", X), Atom.of("employee", X)),
            tgd(Atom.of("employee", X), Atom.of("person", X)),
        ],
        name="lifecycle",
    )
    system = OBDASystem(theory)
    system.add_facts([("manager", ("ann",)), ("employee", ("bob",))])
    return system


PERSON_QUERY = ConjunctiveQuery([Atom.of("person", A)], (A,))


class TestPreparedQueryCaching:
    @pytest.mark.parametrize("backend", ("memory", "sqlite"))
    def test_warm_execute_is_served_from_the_answer_cache(self, backend):
        system = make_system()
        prepared = system.prepare(PERSON_QUERY, backend)

        executions = 0
        original = prepared.plan.execute

        def counting_execute(*args, **kwargs):
            nonlocal executions
            executions += 1
            return original(*args, **kwargs)

        prepared._plan.execute = counting_execute  # count backend work

        first = prepared.execute()
        second = prepared.execute()
        assert first.tuples == second.tuples
        assert executions == 1, "warm execute must not reach the backend"
        info = prepared.execution_cache_info()
        assert (info.hits, info.misses) == (1, 1)
        system.close()

    @pytest.mark.parametrize("backend", ("memory", "sqlite"))
    def test_epoch_bump_invalidates_cached_answers(self, backend):
        system = make_system()
        prepared = system.prepare(PERSON_QUERY, backend)
        before = prepared.execute().tuples
        assert (Constant("ann"),) in before and (Constant("bob"),) in before

        epoch = system.database.epoch
        system.add_fact("person", ("carol",))
        assert system.database.epoch == epoch + 1

        after = prepared.execute().tuples
        assert (Constant("carol"),) in after
        info = prepared.execution_cache_info()
        assert info.misses == 2 and info.hits == 0
        system.close()

    def test_reinserting_an_existing_fact_keeps_the_epoch_and_cache(self):
        system = make_system()
        prepared = system.prepare(PERSON_QUERY)
        prepared.execute()
        epoch = system.database.epoch
        system.add_fact("manager", ("ann",))  # already present
        assert system.database.epoch == epoch
        prepared.execute()
        assert prepared.execution_cache_info().hits == 1

    def test_invalidate_clears_the_cache(self):
        system = make_system()
        prepared = system.prepare(PERSON_QUERY)
        prepared.execute()
        assert prepared.execution_cache_info().size == 1
        prepared.invalidate()
        assert prepared.execution_cache_info().size == 0
        prepared.execute()
        assert prepared.execution_cache_info().misses == 2

    def test_prepare_returns_the_same_handle(self):
        system = make_system()
        assert system.prepare(PERSON_QUERY) is system.prepare(PERSON_QUERY)
        assert system.prepare(PERSON_QUERY, "sqlite") is not system.prepare(
            PERSON_QUERY, "memory"
        )

    def test_answer_shim_goes_through_the_shared_prepared_handle(self):
        system = make_system()
        system.answer(PERSON_QUERY)
        system.answer(PERSON_QUERY)
        info = system.prepare(PERSON_QUERY).execution_cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_answer_cache_is_bounded(self):
        system = make_system()
        prepared = system.prepare(PERSON_QUERY)
        limit = prepared.MAX_CACHED_ANSWERS
        for i in range(limit + 5):
            system.add_fact("person", (f"p{i}",))
            prepared.execute()
        assert prepared.execution_cache_info().size <= limit


class TestParameterBinding:
    def make_bind_system(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("head_of", X, Y), Atom.of("leads", X, Y))],
            name="binding",
        )
        system = OBDASystem(theory)
        system.add_facts(
            [("leads", ("apollo", "ann")), ("head_of", ("gemini", "bob"))]
        )
        return system

    QUERY = ConjunctiveQuery([Atom.of("leads", Constant("apollo"), A)], (A,))

    @pytest.mark.parametrize("backend", ("memory", "sqlite"))
    def test_binding_rebinds_across_the_whole_rewriting(self, backend):
        system = self.make_bind_system()
        prepared = system.prepare(self.QUERY, backend)
        assert prepared.bindable_constants == frozenset({Constant("apollo")})
        unbound = prepared.execute().tuples
        assert unbound == frozenset({(Constant("ann"),)})
        # 'gemini' only leads through the head_of rule: the binding must
        # reach the rewritten disjunct, not just the original atom.
        bound = prepared.execute({"apollo": "gemini"}).tuples
        assert bound == frozenset({(Constant("bob"),)})
        system.close()

    def test_bindings_get_distinct_cache_entries(self):
        system = self.make_bind_system()
        prepared = system.prepare(self.QUERY)
        prepared.execute()
        prepared.execute({"apollo": "gemini"})
        prepared.execute({"apollo": "gemini"})
        info = prepared.execution_cache_info()
        assert (info.hits, info.misses, info.size) == (1, 2, 2)

    def test_identity_binding_shares_the_unbound_cache_entry(self):
        system = self.make_bind_system()
        prepared = system.prepare(self.QUERY)
        prepared.execute()
        prepared.execute({"apollo": "apollo"})
        assert prepared.execution_cache_info().hits == 1

    def test_unknown_binding_key_is_rejected(self):
        system = self.make_bind_system()
        prepared = system.prepare(self.QUERY)
        with pytest.raises(ValueError, match="not a bindable constant"):
            prepared.execute({"mercury": "gemini"})

    def test_binding_to_a_theory_constant_is_rejected(self):
        theory = OntologyTheory(
            tgds=[
                tgd(Atom.of("vip", X), Atom.of("member", X, Constant("gold"))),
            ],
            name="rule-constants",
        )
        system = OBDASystem(theory)
        query = ConjunctiveQuery([Atom.of("member", A, Constant("silver"))], (A,))
        prepared = system.prepare(query)
        # 'silver' is not mentioned by the rules: bindable.
        assert prepared.bindable_constants == frozenset({Constant("silver")})
        # ... but not to 'gold', for which the prepared rewriting may be
        # incomplete (it would unify with the rule's constant).
        with pytest.raises(ValueError, match="occurs in the theory"):
            prepared.execute({"silver": "gold"})

    def test_query_constant_used_by_rules_is_not_bindable(self):
        theory = OntologyTheory(
            tgds=[
                tgd(Atom.of("vip", X), Atom.of("member", X, Constant("gold"))),
            ],
            name="rule-constants",
        )
        system = OBDASystem(theory)
        query = ConjunctiveQuery([Atom.of("member", A, Constant("gold"))], (A,))
        assert system.prepare(query).bindable_constants == frozenset()


class TestSystemBackendManagement:
    def test_named_backends_are_shared_instances(self):
        system = make_system()
        assert system.backend_for("sqlite") is system.backend_for("sqlite")
        assert isinstance(system.backend_for("memory"), InMemoryBackend)
        assert isinstance(system.backend_for("sqlite"), SQLiteBackend)

    def test_explicit_backend_instance_is_used_as_given(self):
        system = make_system()
        backend = InMemoryBackend()
        assert system.backend_for(backend) is backend

    def test_unknown_backend_name_is_rejected(self):
        system = make_system()
        with pytest.raises(ValueError, match="unknown backend"):
            system.prepare(PERSON_QUERY, backend="oracle")

    def test_context_manager_closes_backends(self):
        with make_system() as system:
            prepared = system.prepare(PERSON_QUERY, "sqlite")
            prepared.execute()
        assert system._backends == {}

    def test_default_backend_constructor_argument(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("manager", X), Atom.of("employee", X))]
        )
        system = OBDASystem(theory, backend="sqlite")
        system.add_fact("manager", ("ann",))
        query = ConjunctiveQuery([Atom.of("employee", A)], (A,))
        assert isinstance(system.prepare(query).backend, SQLiteBackend)
        assert (Constant("ann"),) in system.answer(query)
        system.close()


class TestConsistencyCaching:
    def test_nc_rewritings_are_compiled_once(self, monkeypatch):
        from repro.dependencies.constraints import NegativeConstraint

        theory = OntologyTheory(
            tgds=[tgd(Atom.of("student", X), Atom.of("person", X))],
            negative_constraints=[
                NegativeConstraint(
                    (Atom.of("student", X), Atom.of("professor", X))
                )
            ],
        )
        system = OBDASystem(theory)
        system.add_fact("student", ("kim",))
        assert system.is_consistent()

        from repro.core import rewriter as rewriter_module

        def exploding_rewrite(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("consistency check recompiled its NCs")

        monkeypatch.setattr(
            rewriter_module.TGDRewriter, "rewrite", exploding_rewrite
        )
        system.add_fact("professor", ("kim",))
        assert not system.is_consistent()

    def test_verdict_is_cached_per_epoch(self, monkeypatch):
        system = make_system()
        system.check_consistency()
        monkeypatch.setattr(
            system,
            "_consistency_failure",
            lambda: (_ for _ in ()).throw(AssertionError("re-checked")),
        )
        system.check_consistency()  # same epoch: cached verdict
        system.add_fact("person", ("dora",))
        with pytest.raises(AssertionError):
            system.check_consistency()
