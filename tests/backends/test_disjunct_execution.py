"""Per-disjunct plan execution: the backend hook behind full refreshes.

``ExecutionPlan.execute_disjunct`` must partition ``execute``: the union
of the per-disjunct answer sets over all indexes equals the full
execution, on both backends, with and without constant bindings.
"""

import pytest

from repro.backends.base import BackendError, ExecutionPlan
from repro.backends.memory import InMemoryBackend
from repro.backends.sqlite import SQLiteBackend
from repro.database.instance import RelationalInstance
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

X, Y = Variable("X"), Variable("Y")

UCQ = UnionOfConjunctiveQueries(
    [
        ConjunctiveQuery([Atom.of("person", X)], (X,)),
        ConjunctiveQuery([Atom.of("works", X, Y), Atom.of("dept", Y)], (X,)),
    ]
)


def make_instance() -> RelationalInstance:
    instance = RelationalInstance()
    for name, values in (
        ("person", ("ann",)),
        ("person", ("bob",)),
        ("works", ("bob", "sales")),
        ("works", ("carol", "sales")),
        ("dept", ("sales",)),
    ):
        instance.add_tuple(name, values)
    return instance


def make_backend(name):
    return {"memory": InMemoryBackend, "sqlite": SQLiteBackend}[name]()


@pytest.mark.parametrize("backend_name", ("memory", "sqlite"))
class TestExecuteDisjunct:
    def test_disjuncts_partition_the_full_execution(self, backend_name):
        backend = make_backend(backend_name)
        instance = make_instance()
        plan = backend.prepare(UCQ, schema=instance.schema)
        assert plan.disjunct_count == 2
        per_disjunct = [
            plan.execute_disjunct(instance, index)
            for index in range(plan.disjunct_count)
        ]
        assert per_disjunct[0] == {(Constant("ann"),), (Constant("bob"),)}
        assert per_disjunct[1] == {(Constant("bob"),), (Constant("carol"),)}
        union = frozenset().union(*per_disjunct)
        assert union == plan.execute(instance)
        backend.close()

    def test_disjunct_execution_tracks_mutations(self, backend_name):
        backend = make_backend(backend_name)
        instance = make_instance()
        plan = backend.prepare(UCQ, schema=instance.schema)
        plan.execute_disjunct(instance, 1)
        instance.add_tuple("works", ("dave", "sales"))
        instance.remove_tuple("works", ("bob", "sales"))
        assert plan.execute_disjunct(instance, 1) == {
            (Constant("carol"),),
            (Constant("dave"),),
        }
        backend.close()

    def test_bindings_apply_to_the_selected_disjunct(self, backend_name):
        backend = make_backend(backend_name)
        instance = make_instance()
        instance.add_tuple("works", ("erin", "hr"))
        instance.add_tuple("dept", ("hr",))
        placeholder = Constant("$dept")
        bound_ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery(
                    [Atom.of("works", X, placeholder), Atom.of("dept", placeholder)],
                    (X,),
                )
            ]
        )
        plan = backend.prepare(bound_ucq, schema=instance.schema)
        answers = plan.execute_disjunct(
            instance, 0, bindings={placeholder: Constant("hr")}
        )
        assert answers == {(Constant("erin"),)}
        backend.close()

    def test_out_of_range_index_raises(self, backend_name):
        backend = make_backend(backend_name)
        instance = make_instance()
        plan = backend.prepare(UCQ, schema=instance.schema)
        with pytest.raises((IndexError, KeyError, BackendError)):
            plan.execute_disjunct(instance, 99)
        backend.close()


def test_base_plan_declines_disjunct_execution():
    class OpaquePlan(ExecutionPlan):
        def execute(self, database, bindings=None):
            return frozenset()

        @property
        def description(self):
            return "opaque"

    plan = OpaquePlan()
    assert plan.disjunct_count is None
    with pytest.raises(BackendError):
        plan.execute_disjunct(RelationalInstance(), 0)
