"""Incremental SQLite snapshot loading: apply the delta, not the world."""

import pytest

from repro.backends.sqlite import SQLiteBackend
from repro.database.instance import RelationalInstance
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.api import OBDASystem
from repro.queries.parser import parse_query

X, Y = Variable("X"), Variable("Y")


@pytest.fixture()
def system():
    theory = OntologyTheory(
        tgds=[tgd(Atom.of("employee", X), Atom.of("person", X))]
    )
    built = OBDASystem(theory, use_nc_pruning=False, backend="sqlite")
    built.add_fact("employee", ["alice"])
    built.add_fact("person", ["bob"])
    yield built
    built.close()


def _answers(system, query_text="q(A) :- person(A)"):
    return {row[0].value for row in system.answer(parse_query(query_text))}


class TestIncrementalLoading:
    def test_first_execution_is_a_full_load(self, system):
        assert _answers(system) == {"alice", "bob"}
        backend = system.backend_for("sqlite")
        assert backend.full_loads == 1
        assert backend.incremental_loads == 0

    def test_epoch_bump_applies_the_delta(self, system):
        _answers(system)
        backend = system.backend_for("sqlite")
        system.add_fact("employee", ["carol"])
        assert _answers(system) == {"alice", "bob", "carol"}
        assert backend.full_loads == 1
        assert backend.incremental_loads == 1

    def test_removals_are_applied_incrementally(self, system):
        _answers(system)
        backend = system.backend_for("sqlite")
        system.database.remove_tuple("person", ["bob"])
        assert _answers(system) == {"alice"}
        assert backend.incremental_loads == 1
        # Remove-then-re-add nets out through the ordered log.
        system.database.add_tuple("person", ["bob"])
        assert _answers(system) == {"alice", "bob"}
        assert backend.incremental_loads == 2
        assert backend.full_loads == 1

    def test_new_relation_in_delta_creates_its_table(self, system):
        _answers(system)
        backend = system.backend_for("sqlite")
        system.add_fact("person", ["dave"])
        system.add_fact("visitor", ["eve"])  # brand-new table, unreferenced
        assert _answers(system) == {"alice", "bob", "dave"}
        assert backend.incremental_loads == 1

    def test_unchanged_epoch_never_reloads(self, system):
        _answers(system)
        backend = system.backend_for("sqlite")
        for _ in range(3):
            _answers(system)
        assert backend.full_loads == 1
        assert backend.incremental_loads == 0

    def test_oversized_delta_falls_back_to_full_reload(self, system):
        _answers(system)
        backend = system.backend_for("sqlite")
        # Churn more rows than the instance ends up holding: patching
        # would cost more than rebuilding, so the backend reloads.
        for index in range(10):
            system.add_fact("person", [f"p{index}"])
        for index in range(10):
            system.database.remove_tuple("person", [f"p{index}"])
        for index in range(3):
            system.database.remove_tuple(
                "person", ["bob"] if index == 0 else [f"gone{index}"]
            )
        assert len(system.database.changes_since(2)) > len(system.database)
        assert _answers(system) == {"alice"}
        assert backend.full_loads == 2
        assert backend.incremental_loads == 0

    def test_truncated_change_log_falls_back_to_full_reload(self, system):
        from collections import deque

        _answers(system)
        backend = system.backend_for("sqlite")
        database = system.database
        # Shrink the live instance's log to 2 entries (the capacity is a
        # constructor parameter, fixed per instance) so it overflows past
        # the loaded epoch.
        database.max_tracked_changes = 2
        database._changes = deque(maxlen=2)
        database._change_floor = database.epoch
        for index in range(5):
            system.add_fact("person", [f"late{index}"])
        assert database.changes_since(2) is None
        assert "late4" in _answers(system)
        assert backend.full_loads == 2

    def test_different_instance_forces_full_reload(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("employee", X), Atom.of("person", X))]
        )
        backend = SQLiteBackend()
        first = OBDASystem(theory, use_nc_pruning=False, backend=backend)
        first.add_fact("person", ["one"])
        assert _answers(first) == {"one"}
        second = OBDASystem(theory, use_nc_pruning=False, backend=backend)
        second.add_fact("person", ["two"])
        assert _answers(second) == {"two"}
        assert backend.full_loads == 2
        assert backend.incremental_loads == 0
        backend.close()


class TestBackendAgreementUnderMutation:
    def test_sqlite_and_memory_agree_through_add_remove_cycles(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("works_for", X, Y), Atom.of("person", X))]
        )
        system = OBDASystem(theory, use_nc_pruning=False)
        query = parse_query("q(A) :- person(A)")
        mutations = [
            ("add", ("person", ["a"])),
            ("add", ("works_for", ["b", "acme"])),
            ("add", ("person", ["c"])),
            ("remove", ("person", ["a"])),
            ("add", ("person", ["a"])),
            ("remove", ("works_for", ["b", "acme"])),
        ]
        for action, (relation, values) in mutations:
            if action == "add":
                system.database.add_tuple(relation, values)
            else:
                system.database.remove_tuple(relation, values)
            memory = system.answer(query, backend="memory").tuples
            sqlite = system.answer(query, backend="sqlite").tuples
            assert memory == sqlite, f"disagreement after {action} {relation}"
        backend = system.backend_for("sqlite")
        assert backend.incremental_loads >= 4
        system.close()
