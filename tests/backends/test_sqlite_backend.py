"""SQLite backend specifics: loading, encoding, attach mode, errors."""

import sqlite3

import pytest

from repro.api import OBDASystem
from repro.backends import BackendError, SQLiteBackend, create_backend
from repro.backends.sqlite import decode_value, encode_term
from repro.database.instance import RelationalInstance
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null, Variable
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

X, A, B = Variable("X"), Variable("A"), Variable("B")


def simple_theory() -> OntologyTheory:
    return OntologyTheory(
        tgds=[tgd(Atom.of("student", X), Atom.of("person", X))], name="sqlite-tests"
    )


class TestValueEncoding:
    @pytest.mark.parametrize(
        "value", ["plain", 7, 2.5, True, False, None, "o'hare", 'a"b', ""]
    )
    def test_scalar_round_trip(self, value):
        assert decode_value(encode_term(Constant(value))) == Constant(value)

    def test_nul_prefixed_strings_are_escaped(self):
        tricky = "\x00z:42"  # collides with the null encoding un-escaped
        assert decode_value(encode_term(Constant(tricky))) == Constant(tricky)

    def test_labelled_nulls_round_trip(self):
        assert decode_value(encode_term(Null(9))) == Null(9)

    def test_non_scalar_values_are_rejected(self):
        with pytest.raises(BackendError, match="cannot store"):
            encode_term(Constant(("tuple", "value")))

    def test_python_numeric_equality_carries_over(self):
        # SQLite compares 1, 1.0 and TRUE numerically; Python's Constant
        # equality does the same, so the backends cannot disagree here.
        assert Constant(1) == Constant(1.0) == Constant(True)


class TestSQLiteExecution:
    def test_answers_with_boolean_query(self):
        system = OBDASystem(simple_theory())
        system.add_fact("student", ("kim",))
        query = ConjunctiveQuery([Atom.of("person", X)], ())  # BCQ
        assert system.answer(query, backend="sqlite").tuples == frozenset({()})
        system.close()

    def test_boolean_query_without_matches_is_empty(self):
        system = OBDASystem(simple_theory())
        query = ConjunctiveQuery([Atom.of("person", X)], ())
        assert system.answer(query, backend="sqlite").tuples == frozenset()
        system.close()

    def test_labelled_nulls_join_but_never_answer(self):
        database = RelationalInstance(
            [
                Atom.of("edge", Constant("a"), Null(1)),
                Atom.of("edge", Null(1), Constant("b")),
            ]
        )
        theory = OntologyTheory(tgds=[], name="nulls")
        system = OBDASystem(theory, database=database)
        two_hop = ConjunctiveQuery(
            [Atom.of("edge", A, X), Atom.of("edge", X, B)], (A, B)
        )
        expected = system.answer(two_hop, backend="memory").tuples
        assert expected == frozenset({(Constant("a"), Constant("b"))})
        assert system.answer(two_hop, backend="sqlite").tuples == expected
        # the null itself must not leak into unary answers
        ends = ConjunctiveQuery([Atom.of("edge", A, X)], (A,))
        assert system.answer(ends, backend="sqlite").tuples == frozenset(
            {(Constant("a"),)}
        )
        system.close()

    def test_arity_collision_is_a_clear_error(self):
        system = OBDASystem(simple_theory())
        system.add_fact("person", ("kim",))
        system.database.add_tuple("person", ("kim", "extra"))  # person/2
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        with pytest.raises(BackendError, match="collision"):
            system.answer(query, backend="sqlite")
        system.close()

    def test_empty_rewriting_cannot_be_prepared(self):
        backend = SQLiteBackend()
        with pytest.raises(BackendError, match="empty rewriting"):
            backend.prepare(UnionOfConjunctiveQueries([]))

    def test_ucq_beyond_compound_select_limit_is_chunked(self):
        # SQLITE_LIMIT_COMPOUND_SELECT is 500 by default; a perfect
        # rewriting can easily exceed it.  The plan must chunk the UNION
        # and merge the chunk results.
        disjuncts = [
            ConjunctiveQuery([Atom.of(f"r{i}", A)], (A,)) for i in range(501)
        ]
        database = RelationalInstance(
            [Atom.of("r0", Constant("first")), Atom.of("r500", Constant("last"))]
        )
        backend = SQLiteBackend()
        try:
            plan = backend.prepare(UnionOfConjunctiveQueries(disjuncts))
            assert plan.sql.count(";") >= 1  # more than one statement
            assert plan.execute(database) == frozenset(
                {(Constant("first"),), (Constant("last"),)}
            )
        finally:
            backend.close()

    def test_snapshot_can_live_in_a_file(self, tmp_path):
        path = tmp_path / "snapshot.db"
        system = OBDASystem(simple_theory(), backend=SQLiteBackend(str(path)))
        system.add_fact("student", ("kim",))
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        assert (Constant("kim"),) in system.answer(query)
        system.close()
        assert path.exists()

    def test_file_snapshot_from_a_previous_process_is_fully_replaced(
        self, tmp_path
    ):
        path = tmp_path / "snapshot.db"
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        first = OBDASystem(simple_theory(), backend=SQLiteBackend(str(path)))
        first.add_facts([("student", ("alice",)), ("student", ("bob",))])
        assert len(first.answer(query)) == 2
        first.close()
        # A new "process" over the same file, with a different instance:
        # the old snapshot's facts must not be resurrected.
        second = OBDASystem(simple_theory(), backend=SQLiteBackend(str(path)))
        second.add_fact("student", ("carol",))
        assert second.answer(query).tuples == frozenset({(Constant("carol"),)})
        second.close()


class TestAttachedMode:
    def setup_database(self, path):
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE student (arg1)")
        connection.execute("INSERT INTO student VALUES ('kim')")
        connection.commit()
        connection.close()

    def test_attach_requires_a_path(self):
        with pytest.raises(ValueError, match="existing database"):
            SQLiteBackend(attach=True)

    def test_attached_database_is_queried_in_place(self, tmp_path):
        path = tmp_path / "external.db"
        self.setup_database(path)
        backend = SQLiteBackend(str(path), attach=True, create_missing=True)
        system = OBDASystem(simple_theory(), backend=backend)
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        # the instance is empty; the answers come from the file
        assert system.database.epoch == 0
        assert system.answer(query).tuples == frozenset({(Constant("kim"),)})
        system.close()

    def test_missing_tables_raise_without_create_missing(self, tmp_path):
        path = tmp_path / "external.db"
        self.setup_database(path)
        backend = SQLiteBackend(str(path), attach=True)
        system = OBDASystem(simple_theory(), backend=backend)
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        with pytest.raises(BackendError, match="missing tables"):
            system.answer(query)
        system.close()

    def test_data_epoch_tracks_external_commits(self, tmp_path):
        path = tmp_path / "external.db"
        self.setup_database(path)
        backend = SQLiteBackend(str(path), attach=True, create_missing=True)
        system = OBDASystem(simple_theory(), backend=backend)
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        prepared = system.prepare(query)
        assert prepared.execute().tuples == frozenset({(Constant("kim"),)})

        other = sqlite3.connect(path)
        other.execute("INSERT INTO student VALUES ('lee')")
        other.commit()
        other.close()

        answers = prepared.execute().tuples
        assert (Constant("lee"),) in answers
        system.close()


class TestBackendRegistry:
    def test_create_backend_by_name(self):
        assert isinstance(create_backend("sqlite"), SQLiteBackend)

    def test_create_backend_default(self):
        assert create_backend().name == "memory"

    def test_create_backend_passthrough(self):
        backend = SQLiteBackend()
        assert create_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="known backends"):
            create_backend("postgres")
