"""Regression pins for exact rewriting sizes.

The canonical-interning and rule-index rework must not change *what* the
rewriter computes, only how fast it finds it.  These tests pin the exact
UCQ sizes produced by ``TGD-rewrite`` (NY) and ``TGD-rewrite*`` (NY*) on the
paper's running example and on all five Table 1 ontologies, as measured on
the seed implementation; any semantic drift in the engine shows up here as
an exact-number mismatch.
"""

import pytest

from repro.core.rewriter import TGDRewriter
from repro.workloads import get_workload, stock_exchange_example

#: ``workload -> query -> (NY size, NY* size)`` as produced by the seed.
EXPECTED_SIZES = {
    "A": {  # Adolena
        "q1": (92, 13),
        "q2": (49, 4),
        "q3": (13, 1),
        "q4": (141, 12),
        "q5": (78, 6),
    },
    "S": {  # StockExchange
        "q1": (7, 7),
        "q2": (35, 1),
        "q3": (295, 1),
        "q4": (70, 1),
        "q5": (590, 1),
    },
    "U": {  # University (LUBM)
        "q1": (3, 3),
        "q2": (105, 1),
        "q3": (270, 1),
        "q4": (827, 3),
        "q5": (130, 3),
    },
    "V": {  # Vicodi
        "q1": (15, 15),
        "q2": (16, 16),
        "q3": (84, 84),
        "q4": (138, 138),
        "q5": (120, 120),
    },
    "P5": {  # Path5
        "q1": (4, 4),
        "q2": (9, 9),
        "q3": (25, 24),
        "q4": (77, 72),
        "q5": (247, 226),
    },
}


@pytest.fixture(scope="module")
def sizes():
    """Compute every (workload, query) cell once per test session."""
    cache: dict[tuple[str, str], tuple[int, int]] = {}

    def get(workload_name: str, query_name: str) -> tuple[int, int]:
        cell = (workload_name, query_name)
        if cell not in cache:
            workload = get_workload(workload_name)
            query = workload.query(query_name)
            rules = workload.theory.tgds
            plain = TGDRewriter(rules).rewrite(query)
            optimised = TGDRewriter(rules, use_elimination=True).rewrite(query)
            cache[cell] = (len(plain.ucq), len(optimised.ucq))
        return cache[cell]

    return get


class TestRunningExample:
    def test_running_example_sizes_are_pinned(self):
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        plain = TGDRewriter(theory.tgds).rewrite(query)
        optimised = TGDRewriter(theory.tgds, use_elimination=True).rewrite(query)
        assert len(plain.ucq) == 100
        assert len(optimised.ucq) == 2

    def test_running_example_interning_is_collision_free(self):
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        statistics = TGDRewriter(theory.tgds).rewrite(query).statistics
        assert statistics.canonical_collisions == 0
        assert statistics.canonical_buckets == statistics.interned_queries
        assert statistics.variant_cache_hits > 0
        assert statistics.rules_skipped_by_index > 0


@pytest.mark.parametrize(
    ("workload_name", "query_name"),
    [
        (workload, query)
        for workload, cells in EXPECTED_SIZES.items()
        for query in cells
    ],
)
class TestTable1Sizes:
    def test_sizes_match_seed(self, sizes, workload_name, query_name):
        expected = EXPECTED_SIZES[workload_name][query_name]
        assert sizes(workload_name, query_name) == expected
