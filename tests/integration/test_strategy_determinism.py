"""Scheduling strategies are interchangeable: identical rewritings everywhere.

The acceptance bar of the frontier kernel: sequential, threaded and
process-chunked scheduling must produce *byte-identical* rewritings — the
same representatives in the same order, the same canonical keys, the same
deterministic statistics — on the running example and all five Table 1
workloads, at any thread/worker count.  Expansion purity plus the ordered
merge point make this hold by construction; these tests pin it.
"""

import dataclasses

import pytest

from repro.core.rewriter import RewritingStatistics, TGDRewriter
from repro.scheduling import (
    ChunkedProcessStrategy,
    SequentialStrategy,
    ThreadedStrategy,
    create_strategy,
    strategy_names,
)
from repro.workloads import get_workload
from repro.workloads import stock_exchange_example as running_example


class _RunningExample:
    """The paper's running example (Examples 1-5) shaped like a workload."""

    query_names = ("running",)

    def __init__(self):
        self.theory = running_example.theory()

    def query(self, name):
        assert name == "running"
        return running_example.running_query()


WORKLOADS = ("EX", "V", "S", "U", "A", "P5")


def _workload(name):
    return _RunningExample() if name == "EX" else get_workload(name)


def _non_volatile(statistics: RewritingStatistics) -> dict:
    return {
        key: value
        for key, value in dataclasses.asdict(statistics).items()
        if key not in RewritingStatistics.VOLATILE_FIELDS
    }


def _fingerprint(result):
    """Everything a stored record would persist: members, order, stats."""
    return (
        tuple(member.canonical_key for member in result.ucq),
        result.ucq.queries,
        result.auxiliary_queries,
        _non_volatile(result.statistics),
    )


@pytest.fixture(scope="module")
def sequential_results():
    """Reference rewritings of every workload query under the default strategy."""
    reference = {}
    for name in WORKLOADS:
        workload = _workload(name)
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        for query_name in workload.query_names:
            result = engine.rewrite(workload.query(query_name))
            reference[(name, query_name)] = result
    return reference


class TestStrategyEquivalence:
    @pytest.mark.parametrize("threads", [2, 4])
    def test_threaded_matches_sequential_everywhere(
        self, sequential_results, threads
    ):
        strategy = ThreadedStrategy(threads=threads)
        try:
            for name in WORKLOADS:
                workload = _workload(name)
                engine = TGDRewriter(
                    workload.theory.tgds, use_elimination=True, strategy=strategy
                )
                for query_name in workload.query_names:
                    result = engine.rewrite(workload.query(query_name))
                    assert _fingerprint(result) == _fingerprint(
                        sequential_results[(name, query_name)]
                    ), f"threaded({threads}) diverged on {name}/{query_name}"
        finally:
            strategy.close()

    def test_chunked_matches_sequential_everywhere(self, sequential_results):
        # A small min_batch forces real IPC even on modest generations.
        strategy = ChunkedProcessStrategy(workers=2, min_batch=2)
        try:
            for name in WORKLOADS:
                workload = _workload(name)
                engine = TGDRewriter(
                    workload.theory.tgds, use_elimination=True, strategy=strategy
                )
                for query_name in workload.query_names:
                    result = engine.rewrite(workload.query(query_name))
                    assert _fingerprint(result) == _fingerprint(
                        sequential_results[(name, query_name)]
                    ), f"chunked diverged on {name}/{query_name}"
        finally:
            strategy.close()

    def test_plain_ny_engine_agrees_across_strategies(self):
        """The non-eliminating engine (NY column) is strategy-invariant too."""
        workload = get_workload("S")
        reference = {
            name: _fingerprint(
                TGDRewriter(workload.theory.tgds).rewrite(workload.query(name))
            )
            for name in workload.query_names
        }
        for strategy in (ThreadedStrategy(threads=2), ChunkedProcessStrategy(workers=2, min_batch=2)):
            with strategy:
                engine = TGDRewriter(workload.theory.tgds, strategy=strategy)
                for name in workload.query_names:
                    assert (
                        _fingerprint(engine.rewrite(workload.query(name)))
                        == reference[name]
                    )

    def test_strategy_override_per_run(self, sequential_results):
        """`rewrite(strategy=...)` overrides the engine default for one run."""
        workload = _workload("S")
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        with ThreadedStrategy(threads=2) as strategy:
            result = engine.rewrite(workload.query("q1"), strategy=strategy)
        assert _fingerprint(result) == _fingerprint(sequential_results[("S", "q1")])


class TestStrategyRegistry:
    def test_registered_names(self):
        assert set(strategy_names()) == {"sequential", "threaded", "chunked", "auto"}

    def test_create_strategy_resolves_names(self):
        assert isinstance(create_strategy(None), SequentialStrategy)
        assert isinstance(create_strategy("sequential"), SequentialStrategy)
        assert isinstance(create_strategy("threaded", workers=3), ThreadedStrategy)
        assert isinstance(create_strategy("chunked", workers=2), ChunkedProcessStrategy)

    def test_create_strategy_passes_instances_through(self):
        strategy = ThreadedStrategy(threads=2)
        assert create_strategy(strategy) is strategy

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling strategy"):
            create_strategy("voodoo")
