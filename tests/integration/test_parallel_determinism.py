"""Parallel compilation must be invisible except for speed.

The contract of :mod:`repro.parallel` is that the worker count is a pure
performance knob: compiling a workload at any ``workers`` value yields
byte-identical persistent stores, identical result reprs, and the exact
pinned Table 1 sizes.  That in turn rests on the engine being a pure
function of ``(rules, options, query)`` — deterministic rename-apart and
per-run fresh variables — which the first test pins directly.
"""

import pytest

from repro.api import OBDASystem
from repro.core.rewriter import RewritingStatistics, TGDRewriter
from repro.parallel import compile_workloads, resolve_workers
from repro.workloads import get_workload
from tests.integration.test_regression_sizes import EXPECTED_SIZES

WORKER_COUNTS = (1, 2, 4)


class TestEngineDeterminism:
    """A warmed-up engine and a fresh engine produce the same bytes."""

    @pytest.mark.parametrize("workload_name", ["S", "P5"])
    def test_rewrite_is_engine_history_independent(self, workload_name):
        workload = get_workload(workload_name)
        shared = TGDRewriter(workload.theory.tgds, use_elimination=True)
        for name in workload.query_names:
            query = workload.query(name)
            fresh = TGDRewriter(workload.theory.tgds, use_elimination=True)
            alone = fresh.rewrite(query)
            warmed = shared.rewrite(query)
            assert repr(warmed.ucq) == repr(alone.ucq), name
            assert warmed.auxiliary_queries == alone.auxiliary_queries, name

    def test_repeated_rewrites_on_one_engine_are_identical(self):
        workload = get_workload("S")
        engine = TGDRewriter(workload.theory.tgds)
        query = workload.query("q2")
        assert repr(engine.rewrite(query).ucq) == repr(engine.rewrite(query).ucq)


@pytest.mark.parametrize("workload_name", sorted(EXPECTED_SIZES))
class TestWorkerCountInvariance:
    """workers ∈ {1, 2, 4}: same store bytes, same pinned sizes."""

    def test_stores_and_sizes_are_identical_under_any_worker_count(
        self, workload_name, tmp_path
    ):
        workload = get_workload(workload_name)
        queries = [workload.query(name) for name in workload.query_names]
        expected = [
            EXPECTED_SIZES[workload_name][name][1] for name in workload.query_names
        ]

        stores = {}
        reprs = {}
        for workers in WORKER_COUNTS:
            directory = tmp_path / f"workers-{workers}"
            system = OBDASystem(
                workload.theory, use_nc_pruning=False, cache=directory
            )
            results = system.compile_many(queries, workers=workers)
            assert [len(result.ucq) for result in results] == expected, workers
            stores[workers] = (directory / "rewritings.jsonl").read_bytes()
            reprs[workers] = [repr(result.ucq) for result in results]

        baseline = stores[1]
        assert baseline  # the cold run actually persisted something
        for workers in WORKER_COUNTS[1:]:
            assert stores[workers] == baseline, (
                f"store bytes differ between workers=1 and workers={workers}"
            )
            assert reprs[workers] == reprs[1]


class TestParallelServingSemantics:
    def test_warm_parallel_run_is_served_without_a_pool(self, tmp_path):
        workload = get_workload("S")
        queries = [workload.query(name) for name in workload.query_names]
        OBDASystem(workload.theory, cache=tmp_path).compile_many(queries, workers=1)

        warm = OBDASystem(workload.theory, cache=tmp_path)
        results = warm.compile_many(queries, workers=4)
        assert all(r.statistics.persistent_cache_hits == 1 for r in results)
        info = warm.rewriting_cache_info()
        assert info.persistent_hits == len(queries)
        assert info.persistent_misses == 0

    def test_in_batch_variant_is_served_from_the_store(self, tmp_path):
        # A cold batch containing a variant of an earlier query: the
        # sequential loop compiles the first and serves the second from
        # the record it just persisted.  The parallel merge reproduces
        # that — one store entry, a persistent hit on the variant.
        workload = get_workload("S")
        query = workload.query("q2")
        variant = query.rename_variables(prefix="VV")
        system = OBDASystem(workload.theory, cache=tmp_path)
        first, second = system.compile_many([query, variant], workers=2)
        assert first.statistics.persistent_cache_misses == 1
        assert second.statistics.persistent_cache_hits == 1
        assert len(system.rewriting_store) == 1
        assert len(second.ucq) == len(first.ucq)

    def test_duplicate_queries_share_one_result_object(self, tmp_path):
        workload = get_workload("S")
        query = workload.query("q2")
        system = OBDASystem(workload.theory, cache=tmp_path)
        first, second = system.compile_many([query, query], workers=2)
        assert first is second
        info = system.rewriting_cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_batch_statistics_are_merged_totals(self):
        workload = get_workload("S")
        queries = [workload.query(name) for name in workload.query_names]
        system = OBDASystem(workload.theory)
        results = system.compile_many(queries, workers=1)
        totals = system.last_batch_statistics
        assert totals is not None
        assert totals.generated_by_rewriting == sum(
            result.statistics.generated_by_rewriting for result in results
        )
        assert totals.processed_queries == sum(
            result.statistics.processed_queries for result in results
        )

    def test_compile_workloads_spans_many_systems(self, tmp_path):
        jobs = []
        expected = []
        for name in ("S", "P5"):
            workload = get_workload(name)
            system = OBDASystem(
                workload.theory, use_nc_pruning=False, cache=tmp_path / name
            )
            queries = [workload.query(q) for q in workload.query_names]
            jobs.append((system, queries))
            expected.append(
                [EXPECTED_SIZES[name][q][1] for q in workload.query_names]
            )
        results = compile_workloads(jobs, workers=2)
        assert [[len(r.ucq) for r in job] for job in results] == expected
        for system, _ in jobs:
            assert isinstance(system.last_batch_statistics, RewritingStatistics)


class TestResolveWorkers:
    def test_none_means_one_per_usable_cpu(self):
        import os

        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1)
        )
        assert resolve_workers(None) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestIntraQueryInvariance:
    """Intra-query scheduling is a pure performance knob too."""

    @pytest.mark.parametrize("strategy", ["chunked", "threaded"])
    def test_strategy_mode_writes_the_same_store_bytes(self, strategy, tmp_path):
        workload = get_workload("S")
        queries = [workload.query(name) for name in workload.query_names]

        sequential_dir = tmp_path / "sequential"
        sequential = OBDASystem(
            workload.theory, use_nc_pruning=False, cache=sequential_dir
        )
        sequential_results = sequential.compile_many(queries, workers=1)

        strategy_dir = tmp_path / strategy
        system = OBDASystem(workload.theory, use_nc_pruning=False, cache=strategy_dir)
        results = system.compile_many(queries, workers=2, strategy=strategy)

        assert (strategy_dir / "rewritings.jsonl").read_bytes() == (
            sequential_dir / "rewritings.jsonl"
        ).read_bytes()
        assert [repr(result.ucq) for result in results] == [
            repr(result.ucq) for result in sequential_results
        ]

    def test_single_pending_query_auto_splits_its_frontier(
        self, tmp_path, monkeypatch
    ):
        # One pending query with a multi-worker pool cannot use per-query
        # granularity; compile_many must actually engage the chunked
        # strategy (not fall back to plain sequential) and still write
        # the sequential bytes.
        import repro.parallel as parallel_module
        from repro.scheduling import create_strategy as real_create_strategy

        workload = get_workload("S")
        query = workload.query("q2")

        sequential_dir = tmp_path / "sequential"
        sequential = OBDASystem(
            workload.theory, use_nc_pruning=False, cache=sequential_dir
        )
        sequential.compile_many([query], workers=1)

        engaged = []

        def recording_create_strategy(strategy, workers=None):
            engaged.append((strategy, workers))
            return real_create_strategy(strategy, workers=workers)

        monkeypatch.setattr(
            parallel_module, "create_strategy", recording_create_strategy
        )
        auto_dir = tmp_path / "auto"
        system = OBDASystem(workload.theory, use_nc_pruning=False, cache=auto_dir)
        results = system.compile_many([query], workers=2)
        assert engaged == [("chunked", 2)]
        assert len(results) == 1
        assert (auto_dir / "rewritings.jsonl").read_bytes() == (
            sequential_dir / "rewritings.jsonl"
        ).read_bytes()

    def test_explicit_strategy_is_honoured_for_a_single_query(self, tmp_path):
        # A caller-provided strategy instance must be used even when only
        # one query is pending (and must not be closed by the callee).
        from repro.scheduling import ChunkedProcessStrategy

        workload = get_workload("S")
        query = workload.query("q2")

        class CountingStrategy(ChunkedProcessStrategy):
            generations = 0

            def expand_generation(self, engine, batch):
                CountingStrategy.generations += 1
                return super().expand_generation(engine, batch)

        strategy = CountingStrategy(workers=2, min_batch=2)
        try:
            system = OBDASystem(workload.theory, use_nc_pruning=False)
            system.compile_many([query], workers=2, strategy=strategy)
            assert CountingStrategy.generations > 0
        finally:
            strategy.close()

    def test_system_level_strategy_compiles_identically(self, tmp_path):
        workload = get_workload("S")
        queries = [workload.query(name) for name in workload.query_names]

        sequential_dir = tmp_path / "sequential"
        OBDASystem(
            workload.theory, use_nc_pruning=False, cache=sequential_dir
        ).compile_many(queries, workers=1)

        system_dir = tmp_path / "system-strategy"
        with OBDASystem(
            workload.theory,
            use_nc_pruning=False,
            cache=system_dir,
            strategy="threaded",
        ) as system:
            for query in queries:
                system.compile(query)
        assert (system_dir / "rewritings.jsonl").read_bytes() == (
            sequential_dir / "rewritings.jsonl"
        ).read_bytes()
