"""Cross-cutting correctness: every rewriter agrees with the chase oracle.

The central soundness/completeness statement of the paper (Theorem 6 /
Theorem 10) is that, for every database D, evaluating the perfect rewriting
over D yields exactly the certain answers of the original query over D ∪ Σ.
These tests check that invariant — for all four systems — on the paper's
worked examples and on randomly generated linear rule sets, databases and
Boolean queries (hypothesis).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines.quonto import QuOntoStyleRewriter
from repro.baselines.resolution import ResolutionRewriter
from repro.chase.chase import chase, chase_entails
from repro.core.rewriter import TGDRewriter
from repro.database.evaluator import QueryEvaluator
from repro.database.instance import RelationalInstance
from repro.dependencies.classifiers import is_linear
from repro.dependencies.tgd import tgd
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import (
    example2_query,
    example2_rules,
    example4_query,
    example4_rules,
)

from ..conftest import boolean_queries, ground_atoms, linear_tgd_sets

A, B = Variable("A"), Variable("B")
X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def _rewriters(rules, with_elimination=True):
    systems = {
        "NY": TGDRewriter(rules),
        "QO": QuOntoStyleRewriter(rules),
        "RQ": ResolutionRewriter(rules, prune_subsumed=False),
    }
    if with_elimination and is_linear(rules):
        systems["NY*"] = TGDRewriter(rules, use_elimination=True)
    return systems


def _assert_rewritings_match_chase(rules, query, databases, max_depth=6):
    """All systems agree with the (bounded) chase on every database."""
    rewritings = {
        name: rewriter.rewrite(query) for name, rewriter in _rewriters(rules).items()
    }
    for facts in databases:
        instance = RelationalInstance()
        for fact in facts:
            instance.add(fact)
        expected = chase_entails(chase(instance.facts, list(rules), max_depth=max_depth), query)
        evaluator = QueryEvaluator(instance)
        for name, result in rewritings.items():
            assert evaluator.entails_ucq(result.ucq) == expected, (
                f"{name} disagrees with the chase on {sorted(map(repr, facts))}"
            )


class TestPaperExamples:
    def test_example2_on_handwritten_databases(self):
        databases = [
            [Atom.of("s", a)],
            [Atom.of("t", a, b, c), Atom.of("r", b, c)],
            [Atom.of("t", a, b, c), Atom.of("r", b, b)],
            [Atom.of("r", a, b)],
            [],
        ]
        _assert_rewritings_match_chase(example2_rules(), example2_query(), databases)

    def test_example4_on_handwritten_databases(self):
        databases = [
            [Atom.of("p", a)],
            [Atom.of("t", a, b), Atom.of("s", b)],
            [Atom.of("t", a, b), Atom.of("s", c)],
            [Atom.of("s", a)],
        ]
        _assert_rewritings_match_chase(example4_rules(), example4_query(), databases)

    def test_stock_exchange_running_example(self):
        from repro.workloads import stock_exchange_example

        rules = stock_exchange_example.tgds()
        query = stock_exchange_example.running_query()
        database = stock_exchange_example.sample_database()
        chased = chase(database.facts, rules, max_depth=6)
        evaluator = QueryEvaluator(database)
        expected_boolean = chase_entails(chased, query)
        for name, rewriter in _rewriters(rules).items():
            result = rewriter.rewrite(query)
            assert evaluator.entails_ucq(result.ucq) == expected_boolean, name


class TestNonBooleanAnswers:
    def test_certain_answers_match_on_a_small_ontology(self):
        from repro.chase.chase import certain_answers

        rules = [
            # domain/range plus a hierarchy and a mandatory participation
            tgd(Atom.of("has_stock", X, Y), Atom.of("person", X)),
            tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y)),
            tgd(Atom.of("dealer", X), Atom.of("person", X)),
            tgd(Atom.of("dealer", X), Atom.of("has_stock", X, Y)),
        ]
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        database = RelationalInstance()
        database.add_tuple("dealer", ("ann",))
        database.add_tuple("has_stock", ("bob", "acme"))
        expected = certain_answers(query, database.facts, rules, max_depth=6)
        evaluator = QueryEvaluator(database)
        for name, rewriter in _rewriters(rules).items():
            answers = evaluator.evaluate_ucq(rewriter.rewrite(query).ucq)
            assert answers == expected == {(Constant("ann"),), (Constant("bob"),)}, name


class TestRandomisedEquivalence:
    """Property-based Theorem 6 check on random linear rule sets."""

    @settings(max_examples=30, deadline=None)
    @given(
        linear_tgd_sets(max_rules=3),
        boolean_queries(max_atoms=3),
        st.lists(ground_atoms(), min_size=0, max_size=6),
    )
    def test_tgd_rewrite_matches_the_chase(self, rules, query, facts):
        instance = RelationalInstance()
        for fact in facts:
            instance.add(fact)
        expected = chase_entails(chase(instance.facts, rules, max_depth=4, max_atoms=400), query)
        result = TGDRewriter(rules, max_queries=20_000).rewrite(query)
        observed = QueryEvaluator(instance).entails_ucq(result.ucq)
        # A bounded chase can only under-approximate: if it already entails
        # the query the rewriting must as well; if the rewriting entails the
        # query, a deeper chase must confirm it.
        if expected:
            assert observed
        elif observed:
            deeper = chase_entails(
                chase(instance.facts, rules, max_depth=8, max_atoms=2_000), query
            )
            assert deeper

    @settings(max_examples=30, deadline=None)
    @given(
        linear_tgd_sets(max_rules=3),
        boolean_queries(max_atoms=3),
        st.lists(ground_atoms(), min_size=0, max_size=6),
    )
    def test_elimination_preserves_answers(self, rules, query, facts):
        instance = RelationalInstance()
        for fact in facts:
            instance.add(fact)
        plain = TGDRewriter(rules, max_queries=20_000).rewrite(query)
        optimised = TGDRewriter(rules, use_elimination=True, max_queries=20_000).rewrite(query)
        evaluator = QueryEvaluator(instance)
        assert evaluator.entails_ucq(plain.ucq) == evaluator.entails_ucq(optimised.ucq)

    @settings(max_examples=20, deadline=None)
    @given(
        linear_tgd_sets(max_rules=3),
        boolean_queries(max_atoms=2),
        st.lists(ground_atoms(), min_size=0, max_size=5),
    )
    def test_baselines_agree_with_tgd_rewrite(self, rules, query, facts):
        instance = RelationalInstance()
        for fact in facts:
            instance.add(fact)
        evaluator = QueryEvaluator(instance)
        reference = evaluator.entails_ucq(TGDRewriter(rules, max_queries=20_000).rewrite(query).ucq)
        quonto = evaluator.entails_ucq(
            QuOntoStyleRewriter(rules, max_queries=20_000).rewrite(query).ucq
        )
        requiem = evaluator.entails_ucq(
            ResolutionRewriter(rules, prune_subsumed=False).rewrite(query).ucq
        )
        assert quonto == reference
        assert requiem == reference
