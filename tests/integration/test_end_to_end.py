"""End-to-end OBDA tests: the public :class:`repro.OBDASystem` facade."""

import pytest

from repro.api import InconsistentTheoryError, OBDASystem
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.constraints import KeyDependency, NegativeConstraint
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.logic.atoms import Predicate
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads import get_workload, stock_exchange_example

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y = Variable("X"), Variable("Y")


class TestStockExchangeOBDA:
    """The Section 1 scenario run through the high-level facade."""

    def setup_method(self):
        self.system = OBDASystem(
            stock_exchange_example.theory(),
            database=stock_exchange_example.sample_database(),
            schema=stock_exchange_example.SCHEMA,
        )

    def test_answers_the_running_query(self):
        answers = self.system.answer(stock_exchange_example.running_query())
        assert (Constant("ibm_s1"), Constant("ibm"), Constant("nasdaq")) in answers
        assert len(answers) == 2

    def test_answers_match_the_chase_oracle(self):
        query = stock_exchange_example.running_query()
        assert self.system.answer(query).tuples == self.system.answer_via_chase(query)

    def test_compilation_is_cached(self):
        query = stock_exchange_example.running_query()
        first = self.system.compile(query)
        second = self.system.compile(query)
        assert first is second

    def test_rewriting_cache_info_counts_hits_and_misses(self):
        query = stock_exchange_example.running_query()
        self.system.compile(query)
        self.system.compile(query)
        info = self.system.rewriting_cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.size == 1

    def test_rewriting_statistics_expose_index_counters(self):
        query = stock_exchange_example.running_query()
        statistics = self.system.rewriting_statistics(query)
        assert statistics.interned_queries > 0
        assert statistics.variant_lookups >= statistics.variant_cache_hits
        assert statistics.rules_skipped_by_index > 0
        assert statistics.canonical_collisions == 0

    def test_sql_export_is_a_union_of_selects(self):
        sql = self.system.to_sql(stock_exchange_example.running_query())
        assert "SELECT DISTINCT" in sql
        assert "stock_portf" in sql
        assert "UNION" in sql

    def test_consistency_of_the_sample_database(self):
        assert self.system.is_consistent()

    def test_inferred_constraint_violation_is_detected(self):
        # legal_person is derived for 'ibm' through σ9; asserting fin_ins(ibm)
        # then violates δ1 even though no explicit legal_person fact exists.
        self.system.add_fact("fin_ins", ("ibm",))
        assert not self.system.is_consistent()
        with pytest.raises(InconsistentTheoryError):
            self.system.check_consistency()


class TestWorkloadOBDA:
    @pytest.mark.parametrize("name", ("S", "U", "A", "P5"))
    def test_answers_match_the_chase_on_sample_aboxes(self, name):
        workload = get_workload(name)
        system = OBDASystem(workload.theory, database=workload.abox())
        for query_name in ("q1", "q2"):
            query = workload.query(query_name)
            rewriting_answers = system.answer(query).tuples
            chase_answers = system.answer_via_chase(query, max_depth=6)
            assert rewriting_answers == chase_answers

    def test_stockexchange_answers_are_plausible(self):
        workload = get_workload("S")
        system = OBDASystem(workload.theory, database=workload.abox())
        answers = system.answer(workload.query("q2"))
        assert (Constant("bob"), Constant("acme_common")) in answers


class TestConsistencyChecking:
    def test_key_violation_is_reported(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("employee", X), Atom.of("works_for", X, Y))],
            key_dependencies=[KeyDependency(Predicate("works_for", 2), (1,))],
        )
        system = OBDASystem(theory)
        system.add_fact("works_for", ("ann", "acme"))
        system.add_fact("works_for", ("ann", "initech"))
        with pytest.raises(InconsistentTheoryError):
            system.check_consistency()

    def test_direct_negative_constraint_violation(self):
        theory = OntologyTheory(
            tgds=[],
            negative_constraints=[
                NegativeConstraint((Atom.of("student", X), Atom.of("professor", X)),)
            ],
        )
        system = OBDASystem(theory)
        system.add_facts([("student", ("kim",)), ("professor", ("kim",))])
        assert not system.is_consistent()

    def test_consistent_database_passes(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("student", X), Atom.of("person", X))],
            negative_constraints=[
                NegativeConstraint((Atom.of("student", X), Atom.of("professor", X)),)
            ],
        )
        system = OBDASystem(theory)
        system.add_facts([("student", ("kim",)), ("professor", ("lee",))])
        system.check_consistency()
        assert system.is_consistent()


class TestAnswerSet:
    def test_answer_set_protocols(self):
        theory = OntologyTheory(tgds=[tgd(Atom.of("student", X), Atom.of("person", X))])
        system = OBDASystem(theory)
        system.add_fact("student", ("kim",))
        answers = system.answer(ConjunctiveQuery([Atom.of("person", A)], (A,)))
        assert len(answers) == 1
        assert (Constant("kim"),) in answers
        assert list(answers) == [(Constant("kim"),)]
        assert answers.rewriting.size == 2
