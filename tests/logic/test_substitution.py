"""Tests for substitutions."""

import pytest
from hypothesis import given

from repro.logic.atoms import Atom
from repro.logic.substitution import EMPTY_SUBSTITUTION, Substitution
from repro.logic.terms import Constant, Variable

from ..conftest import atoms as atoms_strategy

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestConstruction:
    def test_identity_bindings_are_dropped(self):
        substitution = Substitution({X: X, Y: a})
        assert len(substitution) == 1
        assert X not in substitution

    def test_constants_cannot_be_remapped(self):
        with pytest.raises(ValueError):
            Substitution({a: b})

    def test_constant_identity_binding_is_allowed(self):
        assert len(Substitution({a: a})) == 0

    def test_empty_substitution_singleton_behaviour(self):
        assert len(EMPTY_SUBSTITUTION) == 0
        assert EMPTY_SUBSTITUTION.apply_term(X) == X


class TestApplication:
    def test_unmapped_terms_are_fixed_points(self):
        substitution = Substitution({X: a})
        assert substitution.apply_term(Y) == Y
        assert substitution.apply_term(b) == b

    def test_apply_atom(self):
        substitution = Substitution({X: a, Y: Z})
        assert substitution.apply_atom(Atom.of("r", X, Y)) == Atom.of("r", a, Z)

    def test_apply_atoms_preserves_order(self):
        substitution = Substitution({X: a})
        atoms = (Atom.of("p", X), Atom.of("q", X, Y))
        assert substitution.apply_atoms(atoms) == (Atom.of("p", a), Atom.of("q", a, Y))

    def test_callable_dispatch(self):
        substitution = Substitution({X: a})
        assert substitution(X) == a
        assert substitution(Atom.of("p", X)) == Atom.of("p", a)
        assert substitution([X, Y]) == [a, Y]
        assert substitution((X,)) == (a,)
        assert substitution({Atom.of("p", X)}) == {Atom.of("p", a)}


class TestAlgebra:
    def test_compose_applies_left_then_right(self):
        first = Substitution({X: Y})
        second = Substitution({Y: a})
        composed = first.compose(second)
        assert composed.apply_term(X) == a
        assert composed.apply_term(Y) == a

    def test_compose_keeps_right_only_bindings(self):
        composed = Substitution({X: Y}).compose(Substitution({Z: b}))
        assert composed.apply_term(Z) == b

    def test_extend_conflicting_binding_is_rejected(self):
        substitution = Substitution({X: a})
        with pytest.raises(ValueError):
            substitution.extend(X, b)

    def test_extend_same_binding_is_idempotent(self):
        substitution = Substitution({X: a})
        assert substitution.extend(X, a) == substitution

    def test_restrict(self):
        substitution = Substitution({X: a, Y: b})
        restricted = substitution.restrict([X])
        assert restricted.domain() == {X}

    def test_domain_and_range(self):
        substitution = Substitution({X: a, Y: Z})
        assert substitution.domain() == {X, Y}
        assert substitution.range() == {a, Z}

    def test_is_renaming(self):
        assert Substitution({X: Y, Z: Variable("W")}).is_renaming()
        assert not Substitution({X: Y, Z: Y}).is_renaming()
        assert not Substitution({X: a}).is_renaming()

    def test_equality_and_hash(self):
        assert Substitution({X: a}) == Substitution({X: a})
        assert hash(Substitution({X: a})) == hash(Substitution({X: a}))
        assert Substitution({X: a}) == {X: a}

    def test_as_dict_copies(self):
        substitution = Substitution({X: a})
        mapping = substitution.as_dict()
        mapping[Y] = b
        assert Y not in substitution


class TestProperties:
    @given(atoms_strategy())
    def test_empty_substitution_is_identity_on_atoms(self, atom):
        assert EMPTY_SUBSTITUTION.apply_atom(atom) == atom

    @given(atoms_strategy())
    def test_application_is_deterministic(self, atom):
        substitution = Substitution({Variable("X"): Constant("a")})
        assert substitution.apply_atom(atom) == substitution.apply_atom(atom)
