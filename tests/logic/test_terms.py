"""Tests for first-order terms and the fresh-symbol factories."""

import pytest

from repro.logic.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    VariableFactory,
    is_constant,
    is_null,
    is_variable,
)


class TestTermIdentity:
    def test_variables_equal_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_constants_equal_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_nulls_equal_by_label(self):
        assert Null(3) == Null(3)
        assert Null(3) != Null(4)

    def test_kinds_are_pairwise_distinct(self):
        assert Variable("a") != Constant("a")
        assert Constant(1) != Null(1)
        assert Variable("z1") != Null(1)

    def test_terms_are_hashable(self):
        pool = {Variable("X"), Constant("X"), Null(1), Variable("X")}
        assert len(pool) == 3

    def test_string_forms(self):
        assert str(Variable("X")) == "X"
        assert str(Constant("nasdaq")) == "nasdaq"
        assert str(Null(7)) == "z7"


class TestKindPredicates:
    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("a"))
        assert not is_variable(Null(1))

    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("X"))
        assert not is_constant(Null(1))

    def test_is_null(self):
        assert is_null(Null(1))
        assert not is_null(Variable("X"))
        assert not is_null(Constant("a"))


class TestFactories:
    def test_variable_factory_produces_distinct_variables(self):
        fresh = VariableFactory(prefix="T")
        produced = [fresh() for _ in range(50)]
        assert len(set(produced)) == 50
        assert all(v.name.startswith("T") for v in produced)

    def test_variable_factory_many(self):
        fresh = VariableFactory()
        batch = fresh.many(5)
        assert len(batch) == 5
        assert len(set(batch)) == 5

    def test_variable_factory_respects_start(self):
        fresh = VariableFactory(prefix="V", start=10)
        assert fresh() == Variable("V10")

    def test_null_factory_produces_distinct_nulls(self):
        fresh = NullFactory()
        produced = [fresh() for _ in range(20)]
        assert len(set(produced)) == 20

    def test_null_factory_many(self):
        fresh = NullFactory(start=5)
        assert fresh.many(3) == (Null(5), Null(6), Null(7))

    def test_independent_factories_do_not_share_state(self):
        first, second = VariableFactory(prefix="A"), VariableFactory(prefix="A")
        assert first() == second()


class TestImmutability:
    def test_variable_is_frozen(self):
        with pytest.raises(Exception):
            Variable("X").name = "Y"

    def test_constant_is_frozen(self):
        with pytest.raises(Exception):
            Constant("a").value = "b"
