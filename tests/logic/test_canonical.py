"""Property-style tests for the canonical-form module.

The interning contract of :mod:`repro.logic.canonical` is:

* canonical keys are **invariant** under body-atom reordering and bijective
  variable renaming (the "variants never missed" direction, required for the
  correctness of :class:`repro.queries.ucq.QuerySet`);
* distinct non-isomorphic queries *rarely* collide, and when they do the
  store falls back to an explicit homomorphism/bijection confirmation;
* an ``exact`` fingerprint (discrete colouring) certifies that key equality
  alone proves varianthood.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom
from repro.logic.canonical import (
    canonical_fingerprint,
    canonical_form,
    canonical_key,
    refine_variable_colors,
)
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import QuerySet

from ..conftest import boolean_queries

X, Y, Z, U, V = (Variable(n) for n in "XYZUV")


def _cq(*atoms, answers=()):
    return ConjunctiveQuery(list(atoms), answers)


def _rename(query: ConjunctiveQuery, suffix: str) -> ConjunctiveQuery:
    """A variant of *query* under a fresh bijective renaming."""
    mapping = {v: Variable(f"{v.name}_{suffix}") for v in query.variables}
    return query.apply(mapping)


def _shuffled(query: ConjunctiveQuery, seed: int) -> ConjunctiveQuery:
    """The same query with its body atoms in a different order."""
    body = list(query.body)
    random.Random(seed).shuffle(body)
    return ConjunctiveQuery(body, query.answer_terms, query.head_name)


class TestInvariance:
    def test_invariant_under_atom_reordering(self):
        query = _cq(
            Atom.of("p", X, Y), Atom.of("q", Y, Z), Atom.of("r", Z), answers=(X,)
        )
        for seed in range(10):
            assert canonical_key(_shuffled(query, seed)) == canonical_key(query)

    def test_invariant_under_renaming(self):
        query = _cq(Atom.of("p", X, Y), Atom.of("p", Y, Z), answers=(X,))
        assert canonical_key(_rename(query, "r")) == canonical_key(query)

    def test_invariant_under_renaming_and_reordering_combined(self):
        query = _cq(
            Atom.of("p", X, Y),
            Atom.of("q", Y, Z, U),
            Atom.of("p", U, V),
            answers=(X, V),
        )
        for seed in range(10):
            variant = _shuffled(_rename(query, f"s{seed}"), seed)
            assert canonical_key(variant) == canonical_key(query)

    @settings(max_examples=200, deadline=None)
    @given(boolean_queries(), st.integers(0, 2**16))
    def test_random_variants_share_keys(self, query, seed):
        variant = _shuffled(_rename(query, "h"), seed)
        assert canonical_key(variant) == canonical_key(query)

    @settings(max_examples=200, deadline=None)
    @given(boolean_queries(), st.integers(0, 2**16))
    def test_key_agrees_with_is_variant_of(self, query, seed):
        """Queries recognised as variants always receive equal keys."""
        variant = _shuffled(_rename(query, "k"), seed)
        assert query.is_variant_of(variant)
        assert canonical_key(query) == canonical_key(variant)


class TestDiscrimination:
    def test_distinct_predicates_get_distinct_keys(self):
        assert canonical_key(_cq(Atom.of("p", X))) != canonical_key(_cq(Atom.of("q", X)))

    def test_distinct_join_structure_gets_distinct_keys(self):
        chain = _cq(Atom.of("p", X, Y), Atom.of("p", Y, Z))
        fork = _cq(Atom.of("p", X, Y), Atom.of("p", X, Z))
        assert canonical_key(chain) != canonical_key(fork)

    def test_head_distinguishes_queries(self):
        boolean = _cq(Atom.of("p", X, Y))
        unary = _cq(Atom.of("p", X, Y), answers=(X,))
        other = _cq(Atom.of("p", X, Y), answers=(Y,))
        keys = {canonical_key(boolean), canonical_key(unary), canonical_key(other)}
        assert len(keys) == 3

    def test_constants_distinguish_queries(self):
        with_a = _cq(Atom.of("p", X, Constant("a")))
        with_b = _cq(Atom.of("p", X, Constant("b")))
        assert canonical_key(with_a) != canonical_key(with_b)

    def test_constant_value_types_are_not_conflated(self):
        as_string = _cq(Atom.of("p", Constant("1")))
        as_int = _cq(Atom.of("p", Constant(1)))
        assert canonical_key(as_string) != canonical_key(as_int)

    @settings(max_examples=150, deadline=None)
    @given(boolean_queries(), boolean_queries())
    def test_exact_fingerprints_never_lie(self, first, second):
        """When both colourings are discrete, key equality ⟺ varianthood."""
        key1, exact1 = canonical_fingerprint(first)
        key2, exact2 = canonical_fingerprint(second)
        if exact1 and exact2 and key1 == key2:
            assert first.is_variant_of(second)


class TestCollisionFallback:
    def test_symmetric_non_variants_collide_but_are_stored_separately(self):
        """``p(X,Y), p(Y,X)`` and ``p(X,X), p(Y,Y)`` defeat colour refinement.

        Both queries are 2-atom, every variable occurs twice at both
        positions, so the refinement ends with a single colour class and
        identical keys — the canonical-key collision the interning store must
        survive via its confirmation step.
        """
        swap = _cq(Atom.of("p", X, Y), Atom.of("p", Y, X))
        loops = _cq(Atom.of("p", X, X), Atom.of("p", Y, Y))
        assert not swap.is_variant_of(loops)
        assert canonical_key(swap) == canonical_key(loops)
        assert not canonical_fingerprint(swap)[1]  # non-exact, as expected

        store = QuerySet()
        assert store.add(swap)
        assert store.add(loops)  # collision resolved by confirmation
        assert len(store) == 2
        assert store.statistics.collisions >= 1
        assert store.find_variant(_cq(Atom.of("p", U, V), Atom.of("p", V, U))) is swap


class TestCanonicalForm:
    def test_form_is_a_variant_of_the_input(self):
        query = _cq(Atom.of("p", X, Y), Atom.of("q", Y, Z), answers=(X,))
        form = canonical_form(query)
        assert form.is_variant_of(query)
        assert {v.name for v in form.variables} == {"C0", "C1", "C2"}

    def test_variants_with_discrete_colouring_share_forms(self):
        query = _cq(Atom.of("p", X, Y), Atom.of("q", Y, Z), answers=(X,))
        variant = _shuffled(_rename(query, "f"), seed=3)
        assert canonical_form(query) == canonical_form(variant)

    @settings(max_examples=100, deadline=None)
    @given(boolean_queries())
    def test_form_preserves_the_query(self, query):
        assert canonical_form(query).is_variant_of(query)


class TestRefinement:
    def test_empty_query_has_no_colors(self):
        assert refine_variable_colors(_cq(Atom.of("p", Constant("a")))) == {}

    def test_structurally_distinct_variables_get_distinct_colors(self):
        query = _cq(Atom.of("p", X, Y), Atom.of("q", Y, Z))
        colors = refine_variable_colors(query)
        assert len(set(colors.values())) == 3

    def test_symmetric_variables_share_a_color(self):
        query = _cq(Atom.of("p", X), Atom.of("p", Y))
        colors = refine_variable_colors(query)
        assert colors[X] == colors[Y]

    def test_answer_variables_are_separated_from_existentials(self):
        query = _cq(Atom.of("p", X), Atom.of("p", Y), answers=(X,))
        colors = refine_variable_colors(query)
        assert colors[X] != colors[Y]
