"""Tests for atoms, predicates and positions."""

import pytest

from repro.logic.atoms import (
    Atom,
    Position,
    Predicate,
    atoms_constants,
    atoms_predicates,
    atoms_terms,
    atoms_variables,
    term_occurrences,
)
from repro.logic.terms import Constant, Null, Variable

X, Y = Variable("X"), Variable("Y")
a, b = Constant("a"), Constant("b")


class TestPredicateAndPosition:
    def test_predicate_identity(self):
        assert Predicate("r", 2) == Predicate("r", 2)
        assert Predicate("r", 2) != Predicate("r", 3)

    def test_predicate_getitem_builds_position(self):
        assert Predicate("r", 2)[1] == Position(Predicate("r", 2), 1)

    def test_position_bounds_are_validated(self):
        with pytest.raises(ValueError):
            Position(Predicate("r", 2), 0)
        with pytest.raises(ValueError):
            Position(Predicate("r", 2), 3)

    def test_position_repr_uses_paper_notation(self):
        assert repr(Position(Predicate("stock", 3), 2)) == "stock[2]"


class TestAtomConstruction:
    def test_of_infers_arity(self):
        atom = Atom.of("r", X, a)
        assert atom.predicate == Predicate("r", 2)
        assert atom.terms == (X, a)

    def test_arity_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            Atom(Predicate("r", 2), (X,))

    def test_atoms_are_hashable_and_structural(self):
        assert Atom.of("r", X, a) == Atom.of("r", X, a)
        assert len({Atom.of("r", X, a), Atom.of("r", X, a)}) == 1

    def test_repr(self):
        assert repr(Atom.of("r", X, a)) == "r(X, a)"


class TestAtomAccessors:
    def setup_method(self):
        self.atom = Atom.of("t", X, a, X, Null(1))

    def test_one_based_indexing(self):
        assert self.atom[1] == X
        assert self.atom[2] == a
        assert self.atom[4] == Null(1)
        with pytest.raises(IndexError):
            self.atom[0]
        with pytest.raises(IndexError):
            self.atom[5]

    def test_positions_of_term(self):
        positions = self.atom.positions_of(X)
        assert {p.index for p in positions} == {1, 3}

    def test_positions_enumeration(self):
        assert [p.index for p in self.atom.positions()] == [1, 2, 3, 4]

    def test_variable_constant_null_projections(self):
        assert self.atom.variables() == {X}
        assert self.atom.constants() == {a}
        assert self.atom.nulls() == {Null(1)}

    def test_groundness(self):
        assert not self.atom.is_ground()
        assert Atom.of("r", a, Null(1)).is_ground()
        assert not Atom.of("r", a, Null(1)).is_fact()
        assert Atom.of("r", a, b).is_fact()

    def test_iteration(self):
        assert list(self.atom) == [X, a, X, Null(1)]


class TestAtomTransformation:
    def test_apply_mapping(self):
        atom = Atom.of("r", X, Y)
        assert atom.apply({X: a}) == Atom.of("r", a, Y)

    def test_apply_ignores_unmapped_terms(self):
        atom = Atom.of("r", X, Y)
        assert atom.apply({}) == atom

    def test_rename_predicate(self):
        renamed = Atom.of("r", X, Y).rename_predicate("s")
        assert renamed.name == "s"
        assert renamed.terms == (X, Y)


class TestAtomCollections:
    def setup_method(self):
        self.atoms = [Atom.of("r", X, a), Atom.of("s", Y, Y, b), Atom.of("p", a)]

    def test_atoms_variables(self):
        assert atoms_variables(self.atoms) == {X, Y}

    def test_atoms_constants(self):
        assert atoms_constants(self.atoms) == {a, b}

    def test_atoms_terms(self):
        assert atoms_terms(self.atoms) == {X, Y, a, b}

    def test_atoms_predicates(self):
        assert atoms_predicates(self.atoms) == {
            Predicate("r", 2),
            Predicate("s", 3),
            Predicate("p", 1),
        }

    def test_term_occurrences_count_multiplicity(self):
        counts = term_occurrences(self.atoms)
        assert counts[Y] == 2
        assert counts[a] == 2
        assert counts[X] == 1
