"""Flat-kernel agreement properties over generated workload triples.

PR 10 rewrote the three hot paths of the rewriting kernel — WL
canonical-key refinement, homomorphism backtracking and the MGU — on a
tuple-encoded atom representation (:mod:`repro.logic.flat`), keeping the
object-walking implementations as executable references
(``canonical_fingerprint_reference``, ``homomorphisms_reference``,
``mgu_reference``).  These tests pin the contract the substitution
relies on: on ≥100 :class:`~repro.fuzzing.WorkloadGenerator` triples per
fragment (linear, sticky, sticky-join) the flat and reference
implementations must agree exactly —

* canonical fingerprints are byte-identical,
* homomorphism enumerations yield the same mappings in the same order
  (hence identical verdicts), and
* MGUs are equal substitutions (including the non-unifiable verdict).

The corpus mixes raw generated queries with the CQs of a sample of their
NY rewritings, so renamed-apart variables, shared-variable joins and
multi-atom bodies are all represented.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.core.rewriter import TGDRewriter
from repro.fuzzing import FRAGMENTS, GeneratorConfig, WorkloadGenerator
from repro.logic.canonical import (
    canonical_fingerprint,
    canonical_fingerprint_reference,
)
from repro.logic.homomorphism import homomorphisms, homomorphisms_reference
from repro.logic.unification import mgu, mgu_reference

CASES_PER_FRAGMENT = 100
#: Every REWRITE_STRIDE-th case also contributes its full NY rewriting.
REWRITE_STRIDE = 10
#: Rewriting CQs kept per sampled case (bounds the quadratic hom sweep).
REWRITE_CAP = 25


@lru_cache(maxsize=None)
def corpus(fragment: str):
    """Deterministic CQ corpus for *fragment* (queries + sampled rewritings)."""
    generator = WorkloadGenerator(seed=7, config=GeneratorConfig(fragment=fragment))
    queries = []
    for position, case in enumerate(generator.cases(CASES_PER_FRAGMENT)):
        queries.append(case.query)
        if position % REWRITE_STRIDE == 0:
            result = TGDRewriter(case.theory.tgds).rewrite(case.query)
            queries.extend(list(result.ucq)[:REWRITE_CAP])
    return tuple(queries)


@pytest.mark.parametrize("fragment", FRAGMENTS)
class TestFlatAgreement:
    def test_corpus_spans_the_required_triples(self, fragment):
        assert len(corpus(fragment)) >= CASES_PER_FRAGMENT

    def test_canonical_keys_byte_identical(self, fragment):
        for query in corpus(fragment):
            assert canonical_fingerprint(query) == canonical_fingerprint_reference(
                query
            )

    def test_homomorphism_enumerations_identical(self, fragment):
        queries = corpus(fragment)
        # Pair each body with its successor (and itself): the self-pair
        # exercises the identity homomorphism, the successor pair the
        # mixed found/not-found verdicts.
        for position, source in enumerate(queries):
            for target in (source, queries[(position + 1) % len(queries)]):
                flat = list(homomorphisms(source.body, target.body))
                reference = list(
                    homomorphisms_reference(source.body, target.body)
                )
                assert flat == reference

    def test_mgus_equal(self, fragment):
        problems = 0
        for query in corpus(fragment):
            atoms = query.body
            for i, left in enumerate(atoms):
                for right in atoms[i + 1 :]:
                    if left.predicate != right.predicate:
                        continue
                    problems += 1
                    assert mgu([left, right]) == mgu_reference([left, right])
        # The generated fragments join atoms over shared predicates, so an
        # empty problem set would mean the sweep silently tested nothing.
        assert problems > 0
