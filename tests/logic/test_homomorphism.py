"""Tests for homomorphisms, variant checks and containment machinery."""

from hypothesis import given

from repro.logic.atoms import Atom
from repro.logic.homomorphism import (
    are_variants,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
    variable_bijections,
)
from repro.logic.terms import Constant, Null, Variable

from ..conftest import ground_atoms, atom_sets

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestBasicHomomorphisms:
    def test_simple_match(self):
        hom = find_homomorphism([Atom.of("r", X, Y)], [Atom.of("r", a, b)])
        assert hom is not None
        assert hom.apply_term(X) == a
        assert hom.apply_term(Y) == b

    def test_constants_must_be_preserved(self):
        assert not has_homomorphism([Atom.of("r", a, X)], [Atom.of("r", b, c)])
        assert has_homomorphism([Atom.of("r", a, X)], [Atom.of("r", a, c)])

    def test_join_variable_must_be_consistent(self):
        source = [Atom.of("r", X, Y), Atom.of("s", Y, Z)]
        target_ok = [Atom.of("r", a, b), Atom.of("s", b, c)]
        target_bad = [Atom.of("r", a, b), Atom.of("s", c, c)]
        assert has_homomorphism(source, target_ok)
        assert not has_homomorphism(source, target_bad)

    def test_nulls_can_be_mapped(self):
        # A null behaves like a variable on the source side of a homomorphism.
        assert has_homomorphism([Atom.of("r", Null(1), Null(1))], [Atom.of("r", a, a)])
        assert not has_homomorphism([Atom.of("r", Null(1), Null(1))], [Atom.of("r", a, b)])

    def test_missing_predicate_means_no_homomorphism(self):
        assert not has_homomorphism([Atom.of("p", X)], [Atom.of("r", a, b)])

    def test_enumeration_yields_all_distinct_homomorphisms(self):
        source = [Atom.of("r", X, Y)]
        target = [Atom.of("r", a, b), Atom.of("r", a, c)]
        found = list(homomorphisms(source, target))
        assert len(found) == 2

    def test_partial_mapping_constrains_search(self):
        source = [Atom.of("r", X, Y)]
        target = [Atom.of("r", a, b), Atom.of("r", c, b)]
        found = list(homomorphisms(source, target, partial={X: c}))
        assert len(found) == 1
        assert found[0].apply_term(X) == c

    def test_frozen_terms_must_map_to_themselves(self):
        source = [Atom.of("r", X, Y)]
        target = [Atom.of("r", X, b)]
        assert has_homomorphism(source, target, frozen=[X])
        assert not has_homomorphism(source, [Atom.of("r", a, b)], frozen=[X])

    def test_is_homomorphism_validates_mappings(self):
        source = [Atom.of("r", X, Y)]
        target = [Atom.of("r", a, b)]
        assert is_homomorphism({X: a, Y: b}, source, target)
        assert not is_homomorphism({X: a, Y: c}, source, target)
        assert not is_homomorphism({a: b, X: a, Y: b}, source, target)


class TestVariants:
    def test_renamed_atom_sets_are_variants(self):
        first = [Atom.of("r", X, Y), Atom.of("p", X)]
        second = [Atom.of("r", Z, Variable("W")), Atom.of("p", Z)]
        assert are_variants(first, second)

    def test_different_shapes_are_not_variants(self):
        assert not are_variants([Atom.of("r", X, Y)], [Atom.of("r", X, X)])
        assert not are_variants([Atom.of("r", X, Y)], [Atom.of("s", X, Y)])
        assert not are_variants(
            [Atom.of("r", X, Y)], [Atom.of("r", X, Y), Atom.of("p", X)]
        )

    def test_constants_must_match_exactly_in_variants(self):
        assert are_variants([Atom.of("r", X, a)], [Atom.of("r", Y, a)])
        assert not are_variants([Atom.of("r", X, a)], [Atom.of("r", Y, b)])

    def test_variable_bijections_are_injective(self):
        first = [Atom.of("r", X, Y)]
        second = [Atom.of("r", Z, Z)]
        assert list(variable_bijections(first, second)) == []

    def test_identical_sets_are_variants(self):
        atoms = [Atom.of("r", X, Y)]
        assert are_variants(atoms, atoms)


class TestHomomorphismProperties:
    @given(atom_sets(max_size=3))
    def test_every_atom_set_maps_into_itself(self, atoms):
        assert has_homomorphism(atoms, atoms)

    @given(atom_sets(max_size=3), ground_atoms())
    def test_extending_the_target_preserves_homomorphisms(self, atoms, extra):
        if has_homomorphism(atoms, atoms):
            assert has_homomorphism(atoms, list(atoms) + [extra])

    @given(atom_sets(max_size=3))
    def test_variant_relation_is_reflexive_and_symmetric(self, atoms):
        assert are_variants(atoms, atoms)
        shuffled = list(reversed(atoms))
        assert are_variants(atoms, shuffled) == are_variants(shuffled, atoms)
