"""Tests for most general unifiers (Section 5 preliminaries)."""

from hypothesis import given

from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable, VariableFactory
from repro.logic.unification import (
    is_unifier,
    mgu,
    rename_apart,
    unifiable,
    unify_atoms,
    unify_terms,
)

from ..conftest import atoms as atoms_strategy

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a, b = Constant("a"), Constant("b")


class TestBasicUnification:
    def test_identical_atoms_unify_with_identity(self):
        unifier = mgu([Atom.of("r", X, a), Atom.of("r", X, a)])
        assert unifier == Substitution()

    def test_variable_binds_to_constant(self):
        unifier = mgu([Atom.of("r", X), Atom.of("r", a)])
        assert unifier is not None
        assert unifier.apply_term(X) == a

    def test_variable_chains_collapse(self):
        unifier = mgu([Atom.of("r", X, Y), Atom.of("r", Y, Z)])
        assert unifier is not None
        images = {unifier.apply_term(t) for t in (X, Y, Z)}
        assert len(images) == 1

    def test_different_predicates_do_not_unify(self):
        assert mgu([Atom.of("r", X), Atom.of("s", X)]) is None

    def test_clashing_constants_do_not_unify(self):
        assert mgu([Atom.of("r", a), Atom.of("r", b)]) is None

    def test_indirect_constant_clash(self):
        # X must equal both a and b through the chain X=Y, Y=a, X=b.
        assert unify_terms([(X, Y), (Y, a), (X, b)]) is None

    def test_singleton_and_empty_sets_give_identity(self):
        assert mgu([Atom.of("r", X, a)]) == Substitution()
        assert mgu([]) == Substitution()

    def test_three_way_unification(self):
        unifier = mgu([Atom.of("t", X, Y), Atom.of("t", Y, Z), Atom.of("t", Z, a)])
        assert unifier is not None
        assert {unifier.apply_term(t) for t in (X, Y, Z)} == {a}

    def test_unifiable_and_unify_atoms_helpers(self):
        assert unifiable([Atom.of("r", X), Atom.of("r", a)])
        assert not unifiable([Atom.of("r", a), Atom.of("r", b)])
        assert unify_atoms(Atom.of("r", X), Atom.of("r", b)).apply_term(X) == b


class TestUnifierValidation:
    def test_is_unifier_accepts_valid_unifier(self):
        atoms = [Atom.of("r", X, Y), Atom.of("r", a, Z)]
        unifier = mgu(atoms)
        assert is_unifier(unifier, atoms)

    def test_is_unifier_rejects_non_unifier(self):
        atoms = [Atom.of("r", X, Y), Atom.of("r", a, Z)]
        assert not is_unifier(Substitution({X: b}), atoms)

    def test_mgu_is_most_general(self):
        # Any specific unifier must factor through the MGU.
        atoms = [Atom.of("r", X, Y), Atom.of("r", Y, Z)]
        most_general = mgu(atoms)
        specific = Substitution({X: a, Y: a, Z: a})
        assert is_unifier(specific, atoms)
        # Composing the MGU with a further substitution reproduces `specific`.
        representative = most_general.apply_term(X)
        completion = Substitution({representative: a})
        assert most_general.compose(completion).apply_atom(atoms[0]) == Atom.of("r", a, a)


class TestRenameApart:
    def test_clashing_variables_are_renamed(self):
        fresh = VariableFactory(prefix="F")
        renamed, renaming = rename_apart([Atom.of("r", X, Y)], avoid=[X], fresh_factory=fresh)
        assert renamed[0][2] == Y  # Y did not clash, so it is untouched
        assert renamed[0][1] != X
        assert renaming.apply_term(X) == renamed[0][1]

    def test_no_clash_means_no_change(self):
        fresh = VariableFactory()
        renamed, renaming = rename_apart([Atom.of("r", X)], avoid=[Y], fresh_factory=fresh)
        assert renamed == (Atom.of("r", X),)
        assert len(renaming) == 0


class TestUnificationProperties:
    @given(atoms_strategy(), atoms_strategy())
    def test_mgu_result_is_a_unifier(self, left, right):
        unifier = mgu([left, right])
        if unifier is not None:
            assert unifier.apply_atom(left) == unifier.apply_atom(right)

    @given(atoms_strategy(), atoms_strategy())
    def test_unification_is_symmetric(self, left, right):
        assert (mgu([left, right]) is None) == (mgu([right, left]) is None)

    @given(atoms_strategy())
    def test_atom_unifies_with_itself(self, atom):
        assert mgu([atom, atom]) == Substitution()
