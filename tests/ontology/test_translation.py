"""Tests for the DL-Lite → Datalog± translation."""

import pytest

from repro.logic.atoms import Predicate
from repro.ontology.dl_lite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    DLLiteOntology,
    ExistentialRestriction,
    Functionality,
    InverseRole,
    RoleInclusion,
    exists,
    exists_inverse,
)
from repro.ontology.translation import (
    concept_disjointness_to_constraint,
    concept_inclusion_to_tgd,
    functionality_to_key,
    role_disjointness_to_constraint,
    role_inclusion_to_tgd,
    schema_predicates_of,
    tbox_from_tgds,
    to_theory,
)

Student = AtomicConcept("Student")
Person = AtomicConcept("Person")
attends = AtomicRole("attends")
audits = AtomicRole("audits")


class TestConceptInclusionTranslation:
    def test_atomic_to_atomic(self):
        rule = concept_inclusion_to_tgd(ConceptInclusion(Student, Person))
        assert repr(rule.body[0]) == "Student(X)"
        assert repr(rule.head[0]) == "Person(X)"
        assert rule.is_full

    def test_atomic_to_existential(self):
        rule = concept_inclusion_to_tgd(ConceptInclusion(Student, exists("attends")))
        assert repr(rule.head[0]) == "attends(X, Z)"
        assert len(rule.existential_variables) == 1

    def test_atomic_to_inverse_existential(self):
        rule = concept_inclusion_to_tgd(ConceptInclusion(Student, exists_inverse("attends")))
        assert repr(rule.head[0]) == "attends(Z, X)"

    def test_domain_axiom(self):
        rule = concept_inclusion_to_tgd(ConceptInclusion(exists("attends"), Student))
        assert repr(rule.body[0]) == "attends(X, Y)"
        assert repr(rule.head[0]) == "Student(X)"

    def test_range_axiom(self):
        rule = concept_inclusion_to_tgd(ConceptInclusion(exists_inverse("attends"), Person))
        assert repr(rule.body[0]) == "attends(Y, X)"
        assert repr(rule.head[0]) == "Person(X)"

    def test_existential_to_existential(self):
        rule = concept_inclusion_to_tgd(
            ConceptInclusion(exists("attends"), exists("audits"))
        )
        assert repr(rule.body[0]) == "attends(X, Y)"
        assert repr(rule.head[0]) == "audits(X, Z)"

    def test_negative_inclusion_is_rejected(self):
        with pytest.raises(ValueError):
            concept_inclusion_to_tgd(ConceptInclusion(Student, Person, negated=True))


class TestRoleAxiomTranslation:
    def test_plain_role_inclusion(self):
        rule = role_inclusion_to_tgd(RoleInclusion(audits, attends))
        assert repr(rule.body[0]) == "audits(X, Y)"
        assert repr(rule.head[0]) == "attends(X, Y)"

    def test_inverse_role_inclusion(self):
        rule = role_inclusion_to_tgd(RoleInclusion(audits, InverseRole(attends)))
        assert repr(rule.head[0]) == "attends(Y, X)"

    def test_inverse_on_the_left(self):
        rule = role_inclusion_to_tgd(RoleInclusion(InverseRole(audits), attends))
        assert repr(rule.body[0]) == "audits(Y, X)"

    def test_role_disjointness(self):
        constraint = role_disjointness_to_constraint(
            RoleInclusion(audits, attends, negated=True)
        )
        assert len(constraint.body) == 2

    def test_concept_disjointness(self):
        constraint = concept_disjointness_to_constraint(
            ConceptInclusion(Student, Person, negated=True)
        )
        assert {atom.name for atom in constraint.body} == {"Student", "Person"}

    def test_positive_inclusion_is_rejected_by_constraint_builders(self):
        with pytest.raises(ValueError):
            concept_disjointness_to_constraint(ConceptInclusion(Student, Person))
        with pytest.raises(ValueError):
            role_disjointness_to_constraint(RoleInclusion(audits, attends))


class TestFunctionality:
    def test_direct_functionality(self):
        key = functionality_to_key(Functionality(attends))
        assert key.predicate == Predicate("attends", 2)
        assert key.key_positions == (1,)

    def test_inverse_functionality(self):
        key = functionality_to_key(Functionality(InverseRole(attends)))
        assert key.key_positions == (2,)


class TestWholeTheoryTranslation:
    def setup_method(self):
        self.tbox = (
            DLLiteOntology("uni")
            .subclass("Student", "Person")
            .domain("attends", "Student")
            .range("attends", "Course")
            .mandatory_participation("Student", "attends")
            .disjoint_concepts("Student", "Course")
            .functional("attends")
        )

    def test_counts(self):
        theory = to_theory(self.tbox)
        assert len(theory.tgds) == 4
        assert len(theory.negative_constraints) == 1
        assert len(theory.key_dependencies) == 1

    def test_translation_is_linear_and_fo_rewritable(self):
        theory = to_theory(self.tbox)
        assert theory.classification.linear
        assert theory.is_fo_rewritable

    def test_labels_are_traceable(self):
        theory = to_theory(self.tbox)
        assert all(rule.label.startswith("uni#") for rule in theory.tgds)

    def test_schema_predicates(self):
        predicates = schema_predicates_of(self.tbox)
        assert Predicate("Student", 1) in predicates
        assert Predicate("attends", 2) in predicates

    def test_round_trip_through_tgds(self):
        theory = to_theory(self.tbox)
        recovered = tbox_from_tgds(theory.tgds, name="roundtrip")
        # The positive axioms survive the round trip (order preserved).
        assert len(recovered.axioms) == 4
        retranslated = to_theory(recovered)
        assert len(retranslated.tgds) == len(theory.tgds)
