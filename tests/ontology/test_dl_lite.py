"""Tests for the DL-Lite_R syntax layer."""

from repro.ontology.dl_lite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    DLLiteOntology,
    ExistentialRestriction,
    Functionality,
    InverseRole,
    RoleInclusion,
    exists,
    exists_inverse,
    is_inverse,
    ontology,
    role_name,
)


class TestRolesAndConcepts:
    def test_inverse_of_inverse_is_the_original_role(self):
        role = AtomicRole("hasStock")
        assert role.inverse() == InverseRole(role)
        assert role.inverse().inverse() == role

    def test_role_name_and_is_inverse(self):
        role = AtomicRole("hasStock")
        assert role_name(role) == "hasStock"
        assert role_name(role.inverse()) == "hasStock"
        assert is_inverse(role.inverse())
        assert not is_inverse(role)

    def test_exists_helpers_accept_strings(self):
        assert exists("hasStock") == ExistentialRestriction(AtomicRole("hasStock"))
        assert exists_inverse("hasStock") == ExistentialRestriction(
            InverseRole(AtomicRole("hasStock"))
        )

    def test_concepts_are_hashable(self):
        assert len({AtomicConcept("Stock"), AtomicConcept("Stock")}) == 1


class TestOntologyBuilders:
    def setup_method(self):
        self.tbox = DLLiteOntology("test")

    def test_subclass(self):
        self.tbox.subclass("Student", "Person")
        axiom = self.tbox.axioms[0]
        assert isinstance(axiom, ConceptInclusion)
        assert axiom.lhs == AtomicConcept("Student")
        assert not axiom.negated

    def test_domain_and_range(self):
        self.tbox.domain("attends", "Student").range("attends", "Course")
        domain, range_ = self.tbox.axioms
        assert domain.lhs == exists("attends")
        assert range_.lhs == exists_inverse("attends")
        assert range_.rhs == AtomicConcept("Course")

    def test_mandatory_participation(self):
        self.tbox.mandatory_participation("Student", "attends")
        axiom = self.tbox.axioms[0]
        assert axiom.lhs == AtomicConcept("Student")
        assert axiom.rhs == exists("attends")

    def test_disjointness(self):
        self.tbox.disjoint_concepts("Student", "Professor")
        self.tbox.disjoint_roles("teaches", "attends")
        assert self.tbox.axioms[0].negated
        assert isinstance(self.tbox.axioms[1], RoleInclusion)
        assert self.tbox.axioms[1].negated

    def test_subrole_and_functionality(self):
        self.tbox.subrole("headOf", "worksFor").functional("hasId")
        assert isinstance(self.tbox.axioms[0], RoleInclusion)
        assert isinstance(self.tbox.axioms[1], Functionality)

    def test_builders_chain(self):
        result = self.tbox.subclass("A", "B").subclass("B", "C")
        assert result is self.tbox
        assert len(self.tbox) == 2


class TestOntologyViews:
    def setup_method(self):
        self.tbox = (
            ontology("views")
            .subclass("Student", "Person")
            .domain("attends", "Student")
            .disjoint_concepts("Student", "Course")
            .subrole("audits", "attends")
            .functional("hasId")
        )

    def test_axiom_partitions(self):
        assert len(self.tbox.positive_axioms) == 3
        assert len(self.tbox.negative_axioms) == 1
        assert len(self.tbox.functionality_assertions) == 1
        assert len(self.tbox.concept_inclusions) == 3
        assert len(self.tbox.role_inclusions) == 1

    def test_atomic_concepts_and_roles(self):
        assert AtomicConcept("Student") in self.tbox.atomic_concepts
        assert AtomicConcept("Course") in self.tbox.atomic_concepts
        assert AtomicRole("attends") in self.tbox.atomic_roles
        assert AtomicRole("hasId") in self.tbox.atomic_roles

    def test_is_dl_lite_r(self):
        assert not self.tbox.is_dl_lite_r()  # functionality present
        assert ontology("plain").subclass("A", "B").is_dl_lite_r()

    def test_extend(self):
        other = DLLiteOntology("other").extend(self.tbox.axioms)
        assert len(other) == len(self.tbox)
