"""Tests for the textual DL-Lite syntax."""

import pytest

from repro.ontology.dl_lite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRestriction,
    Functionality,
    InverseRole,
    RoleInclusion,
    exists,
    exists_inverse,
)
from repro.ontology.parser import (
    DLLiteSyntaxError,
    ontology_to_text,
    parse_axiom,
    parse_ontology,
)
from repro.ontology.translation import to_theory


class TestParseAxiom:
    def test_concept_inclusion(self):
        axiom = parse_axiom("Student [= Person")
        assert axiom == ConceptInclusion(AtomicConcept("Student"), AtomicConcept("Person"))

    def test_existential_on_the_left(self):
        axiom = parse_axiom("exists attends [= Student")
        assert axiom.lhs == exists("attends")

    def test_inverse_existential(self):
        axiom = parse_axiom("exists attends- [= Course")
        assert axiom.lhs == exists_inverse("attends")

    def test_mandatory_participation(self):
        axiom = parse_axiom("Student [= exists attends")
        assert axiom.rhs == exists("attends")

    def test_concept_disjointness(self):
        axiom = parse_axiom("Student [= not Professor")
        assert axiom.negated

    def test_role_inclusion_with_declared_role(self):
        axiom = parse_axiom("headOf [= worksFor", roles=["headOf", "worksFor"])
        assert isinstance(axiom, RoleInclusion)

    def test_role_inclusion_with_inverse(self):
        axiom = parse_axiom("hasAlumnus [= degreeFrom-")
        assert isinstance(axiom, RoleInclusion)
        assert axiom.rhs == InverseRole(AtomicRole("degreeFrom"))

    def test_functionality(self):
        axiom = parse_axiom("funct hasId")
        assert axiom == Functionality(AtomicRole("hasId"))
        assert parse_axiom("funct hasId-") == Functionality(InverseRole(AtomicRole("hasId")))

    def test_missing_subsumption_is_an_error(self):
        with pytest.raises(DLLiteSyntaxError):
            parse_axiom("Student Person")

    def test_mixed_role_concept_inclusion_is_an_error(self):
        with pytest.raises(DLLiteSyntaxError):
            parse_ontology("concept Person\nworksFor- [= Person\n")

    def test_malformed_functionality_is_an_error(self):
        with pytest.raises(DLLiteSyntaxError):
            parse_axiom("funct a b")

    def test_missing_role_after_exists_is_an_error(self):
        with pytest.raises(DLLiteSyntaxError):
            parse_axiom("exists [= Person")


class TestParseOntology:
    SAMPLE = """
    # A small university TBox
    role worksFor headOf
    Student [= Person
    exists attends [= Student
    exists attends- [= Course
    Student [= exists attends
    headOf [= worksFor
    Student [= not Course
    funct attends
    """

    def test_all_axioms_are_parsed(self):
        tbox = parse_ontology(self.SAMPLE, name="uni")
        assert len(tbox) == 7
        assert tbox.name == "uni"

    def test_comments_and_blank_lines_are_ignored(self):
        tbox = parse_ontology("# only a comment\n\nStudent [= Person\n")
        assert len(tbox) == 1

    def test_roles_are_inferred_from_usage(self):
        tbox = parse_ontology("exists attends [= Student\naudits [= attends\n")
        role_axioms = [a for a in tbox.axioms if isinstance(a, RoleInclusion)]
        assert len(role_axioms) == 1

    def test_parsed_ontology_translates_to_a_linear_theory(self):
        theory = to_theory(parse_ontology(self.SAMPLE, name="uni"))
        assert theory.classification.linear
        assert len(theory.negative_constraints) == 1
        assert len(theory.key_dependencies) == 1

    def test_errors_carry_line_numbers(self):
        with pytest.raises(DLLiteSyntaxError) as excinfo:
            parse_ontology("Student [= Person\nbroken line\n")
        assert excinfo.value.line_number == 2


class TestRoundTrip:
    def test_text_round_trips_through_the_parser(self):
        original = parse_ontology(TestParseOntology.SAMPLE, name="uni")
        text = ontology_to_text(original)
        reparsed = parse_ontology(text, name="uni")
        assert len(reparsed) == len(original)
        assert [type(a) for a in reparsed.axioms] == [type(a) for a in original.axioms]

    def test_workload_ontologies_round_trip(self):
        from repro.workloads.vicodi import build_tbox

        original = build_tbox()
        reparsed = parse_ontology(ontology_to_text(original), name=original.name)
        assert len(reparsed) == len(original)
        assert to_theory(reparsed).classification.linear
