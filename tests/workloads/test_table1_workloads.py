"""Structural tests for the five Table 1 workloads and the evaluation driver.

The reconstructed ontologies cannot match the paper's absolute numbers (the
original OWL files are not available), but the qualitative findings of
Table 1 must hold:

* NY* ≤ NY ≤ QO in rewriting size on every workload;
* query elimination collapses the STOCKEXCHANGE and UNIVERSITY queries to a
  handful of CQs;
* elimination brings (almost) nothing on VICODI and Path5;
* the ``*X`` variants are at least as large as the plain variants.
"""

import pytest

from repro.dependencies.classifiers import is_linear
from repro.dependencies.normalization import normalize
from repro.evaluation import Table1Evaluator, evaluate_workload
from repro.workloads import get_workload

WORKLOAD_NAMES = ("V", "S", "U", "A", "P5")


@pytest.fixture(scope="module")
def evaluators():
    """One evaluator per workload, comparing NY and NY* only (fast)."""
    return {
        name: Table1Evaluator(get_workload(name), systems=("NY", "NY*"))
        for name in WORKLOAD_NAMES
    }


class TestWorkloadShape:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_five_queries_each(self, name):
        workload = get_workload(name)
        assert workload.query_names == ("q1", "q2", "q3", "q4", "q5")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_theories_are_fo_rewritable_after_normalisation(self, name):
        workload = get_workload(name)
        assert is_linear(list(normalize(workload.theory.tgds).rules))

    @pytest.mark.parametrize("name", ("V", "S"))
    def test_dl_lite_workloads_are_already_linear(self, name):
        assert get_workload(name).theory.classification.linear

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_query_predicates_belong_to_the_schema(self, name):
        workload = get_workload(name)
        schema = {p.name for p in workload.theory.predicates}
        for query in workload.queries.values():
            for atom in query.body:
                assert atom.name in schema

    def test_x_variants_exist_and_are_normalised(self):
        for name in ("UX", "AX", "P5X"):
            workload = get_workload(name)
            assert workload.auxiliary_public
            assert all(rule.is_normalized for rule in workload.theory.tgds)


class TestQualitativeTable1Shape:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    @pytest.mark.parametrize("query_name", ("q1", "q2"))
    def test_elimination_never_increases_the_size(self, evaluators, name, query_name):
        row = evaluators[name].row(query_name)
        assert row.cell("NY*").size <= row.cell("NY").size

    def test_stockexchange_q2_collapses(self, evaluators):
        row = evaluators["S"].row("q2")
        assert row.cell("NY*").size <= 2
        assert row.cell("NY").size >= 10 * row.cell("NY*").size

    def test_university_q2_collapses(self, evaluators):
        row = evaluators["U"].row("q2")
        assert row.cell("NY*").size <= 2
        assert row.cell("NY").size > row.cell("NY*").size

    def test_vicodi_gains_nothing_from_elimination(self, evaluators):
        for query_name in ("q1", "q3"):
            row = evaluators["V"].row(query_name)
            assert row.cell("NY").size == row.cell("NY*").size

    def test_path5_gains_little_from_elimination(self, evaluators):
        row = evaluators["P5"].row("q3")
        ratio = row.cell("NY*").size / row.cell("NY").size
        assert ratio > 0.9

    def test_quonto_is_at_least_as_large_as_tgd_rewrite(self):
        evaluator = Table1Evaluator(get_workload("S"), systems=("QO", "NY"))
        row = evaluator.row("q2")
        assert row.cell("QO").size >= row.cell("NY").size

    def test_x_variant_is_at_least_as_large(self):
        plain = Table1Evaluator(get_workload("U"), systems=("NY",)).row("q2")
        extended = Table1Evaluator(get_workload("UX"), systems=("NY",)).row("q2")
        assert extended.cell("NY").size >= plain.cell("NY").size

    def test_metrics_are_consistent(self, evaluators):
        row = evaluators["A"].row("q1")
        for system in ("NY", "NY*"):
            cell = row.cell(system)
            assert cell.length >= cell.size  # at least one atom per CQ
            assert cell.width >= 0

    def test_rows_flatten_for_reporting(self, evaluators):
        flat = evaluators["V"].row("q1").as_dict()
        assert flat["workload"] == "V"
        assert "NY_size" in flat and "NY*_size" in flat


class TestEvaluateWorkloadHelper:
    def test_row_per_query(self):
        rows = evaluate_workload(get_workload("V"), systems=("NY",), query_names=["q1", "q2"])
        assert [row.query_name for row in rows] == ["q1", "q2"]

    def test_unknown_system_is_rejected(self):
        with pytest.raises(ValueError):
            Table1Evaluator(get_workload("V"), systems=("NOPE",))
