"""Tests for the workload registry and schema-restriction helpers."""

from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Variable
from repro.dependencies.tgd import TGD, tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.workloads import build_registry, default_registry, get_workload, workload_names
from repro.workloads.registry import Workload, WorkloadRegistry, restrict_to_schema

A, B = Variable("A"), Variable("B")
X, Y = Variable("X"), Variable("Y")


def _tiny_workload(name: str = "tiny") -> Workload:
    theory = OntologyTheory(
        tgds=[TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))],
        name=name,
    )
    queries = {"q1": ConjunctiveQuery([Atom.of("q", A, B)], (A,))}
    return Workload(name=name, theory=theory, queries=queries)


class TestWorkload:
    def test_query_lookup(self):
        workload = _tiny_workload()
        assert workload.query("q1").arity == 1
        assert workload.query_names == ("q1",)

    def test_generic_abox_covers_the_schema(self):
        abox = _tiny_workload().abox(seed=3, facts_per_relation=4)
        assert len(abox.relation(Predicate("p", 1))) >= 1

    def test_abox_factory_is_used_when_registered(self):
        def factory(seed, facts_per_relation):
            from repro.database.instance import database_from_tuples

            return database_from_tuples([("p", ("only",))])

        workload = _tiny_workload()
        workload.abox_factory = factory
        assert len(workload.abox()) == 1

    def test_normalized_variant_publishes_auxiliaries(self):
        workload = _tiny_workload("W")
        variant = workload.normalized_variant()
        assert variant.name == "WX"
        assert variant.auxiliary_public
        assert all(rule.is_normalized for rule in variant.theory.tgds)
        assert variant.queries == workload.queries


class TestRestrictToSchema:
    def test_queries_over_auxiliary_predicates_are_dropped(self):
        allowed = [Predicate("q", 2)]
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("q", A, B)], (A,)),
                ConjunctiveQuery([Atom.of("aux_1", A, B)], (A,)),
            ]
        )
        restricted = restrict_to_schema(ucq, allowed)
        assert len(restricted) == 1
        assert restricted[0].body[0].name == "q"

    def test_everything_allowed_keeps_everything(self):
        ucq = UnionOfConjunctiveQueries([ConjunctiveQuery([Atom.of("q", A, B)], (A,))])
        assert len(restrict_to_schema(ucq, [Predicate("q", 2)])) == 1


class TestRegistry:
    def test_register_and_get(self):
        registry = WorkloadRegistry()
        workload = registry.register(_tiny_workload())
        assert registry.get("tiny") is workload
        assert "tiny" in registry
        assert len(registry) == 1
        assert registry.names() == ("tiny",)

    def test_build_registry_contains_all_table1_workloads(self):
        registry = build_registry()
        for name in ("V", "S", "U", "A", "P5", "UX", "AX", "P5X"):
            assert name in registry

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()
        assert set(workload_names()) >= {"V", "S", "U", "A", "P5"}

    def test_get_workload_round_trip(self):
        assert get_workload("V").name == "V"
        assert get_workload("P5X").auxiliary_public
