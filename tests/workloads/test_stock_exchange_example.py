"""Tests reproducing the Section 1 running example and Figure 1."""

from repro.core.rewriter import TGDRewriter
from repro.database.evaluator import QueryEvaluator
from repro.logic.terms import Constant
from repro.queries.ucq import QuerySet
from repro.workloads import stock_exchange_example as running


class TestTheoryShape:
    def test_nine_tgds_and_one_constraint(self):
        theory = running.theory()
        assert len(theory.tgds) == 9
        assert len(theory.negative_constraints) == 1

    def test_rules_are_linear_and_sticky(self):
        theory = running.theory()
        assert theory.classification.linear
        assert theory.classification.sticky
        assert theory.is_fo_rewritable

    def test_schema_matches_the_paper(self):
        assert running.SCHEMA["stock"].attributes == ("id", "name", "unit_price")
        assert running.SCHEMA["stock_portf"].attributes == ("company", "stock", "qty")

    def test_labels_follow_the_paper_numbering(self):
        labels = [rule.label for rule in running.tgds()]
        assert labels == [f"sigma{i}" for i in range(1, 10)]


class TestFigure1:
    """The partial rewriting q[0] … q[3] of Figure 1 is actually generated."""

    def test_all_four_queries_appear_in_the_rewriting(self):
        result = TGDRewriter(running.theory().tgds).rewrite(running.running_query())
        store = QuerySet(result.ucq)
        for figure_query in running.figure1_queries():
            assert store.find_variant(figure_query) is not None

    def test_naive_rewriting_is_large(self):
        """Section 1: the complete perfect rewriting is large without optimisation."""
        result = TGDRewriter(running.theory().tgds).rewrite(running.running_query())
        assert len(result.ucq) > 20


class TestSection1Optimisation:
    def test_optimised_rewriting_has_exactly_two_queries(self):
        rewriter = TGDRewriter(running.theory().tgds, use_elimination=True)
        result = rewriter.rewrite(running.running_query())
        assert len(result.ucq) == 2
        store = QuerySet(result.ucq)
        for expected in running.expected_optimized_rewriting():
            assert store.find_variant(expected) is not None

    def test_optimised_and_naive_rewritings_agree_on_the_sample_database(self):
        database = running.sample_database()
        naive = TGDRewriter(running.theory().tgds).rewrite(running.running_query())
        optimised = TGDRewriter(running.theory().tgds, use_elimination=True).rewrite(
            running.running_query()
        )
        evaluator = QueryEvaluator(database)
        assert evaluator.evaluate_ucq(naive.ucq) == evaluator.evaluate_ucq(optimised.ucq)

    def test_expected_answers_on_the_sample_database(self):
        database = running.sample_database()
        optimised = TGDRewriter(running.theory().tgds, use_elimination=True).rewrite(
            running.running_query()
        )
        answers = QueryEvaluator(database).evaluate_ucq(optimised.ucq)
        assert (Constant("ibm_s1"), Constant("ibm"), Constant("nasdaq")) in answers
        assert (Constant("acme_s1"), Constant("acme"), Constant("ftse")) in answers

    def test_reduced_query_matches_the_paper(self):
        reduced = running.reduced_query()
        assert {atom.name for atom in reduced.body} == {"stock_portf", "list_comp"}
