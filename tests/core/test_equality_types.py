"""Tests for equality types (Definition 4, Example 6)."""

import pytest

from repro.core.equality_types import (
    ConstantEquality,
    PositionEquality,
    eq_subset,
    equality_type,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.workloads.paper_examples import example6_rules

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
c = Constant("c")


class TestEqualityType:
    def test_atom_without_repetitions_has_empty_type(self):
        assert equality_type(Atom.of("p", X, Y)).equalities == frozenset()

    def test_repeated_variable_produces_position_equality(self):
        eq = equality_type(Atom.of("s", X, X, Y))
        assert eq.equalities == {PositionEquality(1, 2)}

    def test_constant_produces_constant_equality(self):
        eq = equality_type(Atom.of("r", X, Y, c))
        assert eq.equalities == {ConstantEquality(3, "c")}

    def test_repeated_constants_do_not_produce_position_equalities(self):
        # Definition 4 only relates positions holding the same non-constant
        # term; two occurrences of the same constant yield two constant
        # equalities instead.
        eq = equality_type(Atom.of("r", c, c))
        assert eq.equalities == {ConstantEquality(1, "c"), ConstantEquality(2, "c")}

    def test_triple_repetition_produces_all_pairs(self):
        eq = equality_type(Atom.of("t", X, X, X))
        assert eq.equalities == {
            PositionEquality(1, 2),
            PositionEquality(1, 3),
            PositionEquality(2, 3),
        }

    def test_example6_equality_types(self):
        sigma1, sigma2, sigma3 = example6_rules()
        assert equality_type(sigma1.body[0]).equalities == frozenset()
        assert equality_type(sigma1.head[0]).equalities == frozenset()
        assert equality_type(sigma2.body[0]).equalities == {ConstantEquality(3, "c")}
        assert equality_type(sigma2.head[0]).equalities == {PositionEquality(2, 3)}
        assert equality_type(sigma3.body[0]).equalities == {PositionEquality(1, 2)}
        assert equality_type(sigma3.head[0]).equalities == frozenset()

    def test_position_equality_orientation_is_validated(self):
        with pytest.raises(ValueError):
            PositionEquality(2, 1)


class TestEqSubset:
    def test_subset_requires_same_predicate(self):
        assert not eq_subset(Atom.of("p", X, Y), Atom.of("q", X, X))

    def test_empty_type_is_subset_of_anything_with_same_predicate(self):
        assert eq_subset(Atom.of("s", X, Y, Z), Atom.of("s", X, X, Y))

    def test_example6_chain_conditions(self):
        sigma1, sigma2, sigma3 = example6_rules()
        # eq(body(σ3)) = {s[1]=s[2]} is NOT a subset of eq(head(σ2)) = {s[2]=s[3]}
        # (Example 8 relies on exactly this failure).
        assert not eq_subset(sigma3.body[0], sigma2.head[0])
        # eq(body(σ2)) = {r[3]=c} is not implied by eq(head(σ1)) = {}.
        assert not eq_subset(sigma2.body[0], sigma1.head[0])
        # The empty type of body(σ1) is a subset of the empty type of head(σ3).
        assert eq_subset(sigma1.body[0], sigma3.head[0])

    def test_subset_with_constants(self):
        specific = Atom.of("r", X, Y, c)
        more_specific = Atom.of("r", X, X, c)
        assert eq_subset(specific, more_specific)
        assert not eq_subset(more_specific, specific)

    def test_ordering_operator(self):
        assert equality_type(Atom.of("r", X, Y)) <= equality_type(Atom.of("r", X, X))
