"""Tests for TGD-rewrite and TGD-rewrite* (Algorithm 1, Theorems 6, 7, 10)."""

import pytest

from repro.chase.chase import chase, chase_entails
from repro.core.rewriter import RewritingBudgetExceeded, TGDRewriter, rewrite
from repro.database.evaluator import QueryEvaluator
from repro.database.instance import RelationalInstance
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import TGD, tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import (
    example2_query,
    example2_rules,
    example3_queries,
    example4_completeness_witness,
    example4_query,
    example4_rules,
)

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, d = Constant("a"), Constant("b"), Constant("d")


class TestExample2:
    """The worked rewriting of Example 2 must be reproduced exactly."""

    def setup_method(self):
        self.result = rewrite(example2_query(), example2_rules())

    def test_rewriting_size_is_three(self):
        assert len(self.result.ucq) == 3

    def test_original_query_is_in_the_rewriting(self):
        assert self.result.ucq.contains_variant(example2_query())

    def test_q1_is_in_the_rewriting(self):
        V1 = Variable("V1")
        q1 = ConjunctiveQuery([Atom.of("t", A, B, C), Atom.of("t", V1, B, C)], ())
        assert self.result.ucq.contains_variant(q1)

    def test_q3_is_in_the_rewriting(self):
        q3 = ConjunctiveQuery([Atom.of("s", A)], ())
        assert self.result.ucq.contains_variant(q3)

    def test_factorized_query_is_excluded_from_the_final_rewriting(self):
        # q2 : q() <- t(A, B, C) is produced by factorisation only (label 0).
        q2 = ConjunctiveQuery([Atom.of("t", A, B, C)], ())
        assert not self.result.ucq.contains_variant(q2)
        assert any(q2.is_variant_of(aux) for aux in self.result.auxiliary_queries)

    def test_statistics_are_populated(self):
        stats = self.result.statistics
        assert stats.generated_by_rewriting >= 2
        assert stats.generated_by_factorization >= 1
        assert stats.processed_queries >= 1
        assert stats.elapsed_seconds >= 0


class TestExample3Soundness:
    """Dropping the applicability condition would produce unsound rewritings."""

    def test_constant_is_not_lost(self):
        # q() <- t(A, B, c): σ1 must not be applied, so no CQ over s/1 appears.
        result = rewrite(example3_queries()["constant"], example2_rules())
        assert all(
            all(atom.name != "s" for atom in cq.body) for cq in result.ucq
        )

    def test_shared_variable_is_not_lost(self):
        result = rewrite(example3_queries()["shared"], example2_rules())
        assert all(
            all(atom.name != "s" for atom in cq.body) for cq in result.ucq
        )

    def test_unsound_query_would_change_answers(self):
        # The database of Example 3: D = {s(b), t(a, b, d)}.
        database = RelationalInstance()
        database.add(Atom.of("s", b))
        database.add(Atom.of("t", a, b, d))
        query = example3_queries()["constant"]
        result = rewrite(query, example2_rules())
        evaluator = QueryEvaluator(database)
        # D ∪ Σ does not entail q, so the rewriting must not be entailed either.
        chased = chase(database.facts, example2_rules(), max_depth=5)
        assert not chase_entails(chased, query)
        assert not evaluator.entails_ucq(result.ucq)


class TestExample4Completeness:
    """The restricted factorisation step is what keeps the rewriting complete."""

    def test_p_query_is_generated(self):
        result = rewrite(example4_query(), example4_rules())
        assert result.ucq.contains_variant(example4_completeness_witness())

    def test_rewriting_is_complete_on_the_example_database(self):
        database = RelationalInstance()
        database.add(Atom.of("p", a))
        result = rewrite(example4_query(), example4_rules())
        assert QueryEvaluator(database).entails_ucq(result.ucq)


class TestNonBooleanQueries:
    def test_answer_variables_are_preserved(self):
        rules = [tgd(Atom.of("student", X), Atom.of("person", X))]
        query = ConjunctiveQuery([Atom.of("person", A)], (A,))
        result = rewrite(query, rules)
        assert len(result.ucq) == 2
        for cq in result.ucq:
            assert cq.arity == 1
            assert all(
                term in cq.variables or not hasattr(term, "name")
                for term in cq.answer_terms
            )

    def test_hierarchy_rewriting_enumerates_subclasses(self):
        rules = [
            tgd(Atom.of("undergrad", X), Atom.of("student", X)),
            tgd(Atom.of("grad", X), Atom.of("student", X)),
            tgd(Atom.of("student", X), Atom.of("person", X)),
        ]
        result = rewrite(ConjunctiveQuery([Atom.of("person", A)], (A,)), rules)
        names = {cq.body[0].name for cq in result.ucq}
        assert names == {"person", "student", "undergrad", "grad"}

    def test_existential_rule_blocked_on_answer_variable(self):
        # q(A, B) <- works_for(A, B) cannot be rewritten with
        # employee(X) -> ∃Y works_for(X, Y) because B is an answer variable.
        rules = [tgd(Atom.of("employee", X), Atom.of("works_for", X, Y))]
        query = ConjunctiveQuery([Atom.of("works_for", A, B)], (A, B))
        result = rewrite(query, rules)
        assert len(result.ucq) == 1

    def test_existential_rule_applies_to_projected_variable(self):
        rules = [tgd(Atom.of("employee", X), Atom.of("works_for", X, Y))]
        query = ConjunctiveQuery([Atom.of("works_for", A, B)], (A,))
        result = rewrite(query, rules)
        assert len(result.ucq) == 2


class TestTheoryIntegration:
    def test_rewriter_accepts_a_theory_and_its_constraints(self):
        theory = OntologyTheory(
            tgds=[tgd(Atom.of("p", X), Atom.of("q", X))],
            negative_constraints=[],
        )
        rewriter = TGDRewriter(theory)
        assert len(rewriter.rules) == 1

    def test_rules_are_normalised_automatically(self):
        multi_head = TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))
        rewriter = TGDRewriter([multi_head])
        assert all(rule.is_normalized for rule in rewriter.rules)

    def test_elimination_requires_linear_rules(self):
        joins = TGD((Atom.of("p", X), Atom.of("q", X, Y)), (Atom.of("r", X),))
        with pytest.raises(ValueError):
            TGDRewriter([joins], use_elimination=True)

    def test_budget_is_enforced(self):
        rules = [
            tgd(Atom.of("c1", X), Atom.of("person", X)),
            tgd(Atom.of("c2", X), Atom.of("person", X)),
            tgd(Atom.of("c3", X), Atom.of("person", X)),
        ]
        query = ConjunctiveQuery(
            [Atom.of("person", A), Atom.of("person", B), Atom.of("person", C)], ()
        )
        with pytest.raises(RewritingBudgetExceeded):
            TGDRewriter(rules, max_queries=2).rewrite(query)


class TestRewriteStarEquivalence:
    """TGD-rewrite and TGD-rewrite* agree on certain answers (Theorem 10)."""

    def test_same_answers_on_the_stock_exchange_example(self):
        from repro.workloads import stock_exchange_example

        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        database = stock_exchange_example.sample_database()
        plain = TGDRewriter(theory.tgds).rewrite(query)
        optimised = TGDRewriter(theory.tgds, use_elimination=True).rewrite(query)
        evaluator = QueryEvaluator(database)
        assert evaluator.evaluate_ucq(plain.ucq) == evaluator.evaluate_ucq(optimised.ucq)
        assert len(optimised.ucq) <= len(plain.ucq)

    def test_elimination_reduces_size_on_domain_range_queries(self):
        rules = [
            tgd(Atom.of("has_stock", X, Y), Atom.of("person", X)),
            tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y)),
            tgd(Atom.of("dealer", X), Atom.of("person", X)),
            tgd(Atom.of("bond", X), Atom.of("stock", X)),
        ]
        query = ConjunctiveQuery(
            [Atom.of("person", A), Atom.of("has_stock", A, B), Atom.of("stock", B)],
            (A, B),
        )
        plain = rewrite(query, rules)
        optimised = rewrite(query, rules, use_elimination=True)
        assert len(optimised.ucq) == 1
        assert len(plain.ucq) > len(optimised.ucq)
