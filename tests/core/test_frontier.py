"""The frontier kernel: explicit state, pure expansion, ordered merge."""

import pytest

from repro.core.frontier import (
    LABEL_FACTORIZATION,
    LABEL_REWRITING,
    CandidateQuery,
    Expansion,
    KernelState,
    RewriteFrontier,
    merge_expansion,
)
from repro.core.rewriter import (
    RewritingBudgetExceeded,
    RewritingStatistics,
    TGDRewriter,
)
from repro.queries.parser import parse_query
from repro.workloads import get_workload


class TestRewriteFrontier:
    def test_take_generation_drains_and_advances(self):
        frontier = RewriteFrontier()
        first = parse_query("q(A) :- p(A)")
        second = parse_query("q(A) :- r(A)")
        frontier.add(first)
        frontier.add(second)
        assert len(frontier) == 2 and frontier.generation == 0
        batch = frontier.take_generation()
        assert batch == [first, second]
        assert not frontier and frontier.generation == 1

    def test_new_queries_join_the_next_generation(self):
        frontier = RewriteFrontier()
        frontier.add(parse_query("q(A) :- p(A)"))
        frontier.take_generation()
        late = parse_query("q(A) :- r(A)")
        frontier.add(late)
        assert frontier.take_generation() == [late]
        assert frontier.generation == 2


class TestExpand:
    @pytest.fixture(scope="class")
    def engine(self):
        return TGDRewriter(
            get_workload("S").theory.tgds, use_elimination=True
        )

    def test_expansion_is_pure(self, engine):
        """Expanding the same query twice yields equal candidates."""
        query = get_workload("S").query("q2")
        first = engine.expand(query)
        second = engine.expand(query)
        assert first.candidates == second.candidates
        assert first.rules_considered == second.rules_considered

    def test_expansion_matches_fresh_engine(self, engine):
        """A warmed engine's expansion equals a fresh replica's (determinism)."""
        query = get_workload("S").query("q5")
        # Warm the memo layers with unrelated work first.
        engine.rewrite(get_workload("S").query("q1"))
        replica = TGDRewriter.from_specification(engine.specification())
        assert engine.expand(query).candidates == replica.expand(query).candidates

    def test_factorization_candidates_precede_rewriting_candidates(self):
        # Example 2's derivation factorizes; within every expansion the
        # factorization candidates must precede the rewriting candidates —
        # the order Algorithm 1 generates them in and the merge replays.
        from repro.core.frontier import KernelState, merge_expansion
        from repro.workloads.paper_examples import example2_query, example2_rules

        engine_ny = TGDRewriter(example2_rules())
        state = KernelState.initial(example2_query(), RewritingStatistics())
        seen_factorization = False
        while state.frontier:
            for current in state.frontier.take_generation():
                expansion = engine_ny.expand(current)
                labels = [candidate.label for candidate in expansion.candidates]
                # 0s (factorization) first, then 1s (rewriting).
                assert labels == sorted(labels)
                seen_factorization |= LABEL_FACTORIZATION in labels
                merge_expansion(state, expansion, max_queries=1000)
        assert seen_factorization


class TestMergeExpansion:
    def _state(self, query_text="q(A) :- p(A)"):
        query = parse_query(query_text)
        return query, KernelState.initial(query, RewritingStatistics())

    def test_new_rewriting_candidate_is_interned_and_scheduled(self):
        query, state = self._state()
        state.frontier.take_generation()
        candidate = parse_query("q(A) :- r(A)")
        merge_expansion(
            state,
            Expansion(query, (CandidateQuery(candidate, LABEL_REWRITING),)),
            max_queries=10,
        )
        assert state.labels[candidate] == LABEL_REWRITING
        assert state.frontier.pending == (candidate,)
        assert state.statistics.generated_by_rewriting == 1
        assert state.statistics.processed_queries == 1

    def test_factorization_rederived_by_rewriting_is_upgraded(self):
        query, state = self._state()
        state.frontier.take_generation()
        candidate = parse_query("q(A) :- r(A)")
        merge_expansion(
            state,
            Expansion(query, (CandidateQuery(candidate, LABEL_FACTORIZATION),)),
            max_queries=10,
        )
        assert state.labels[candidate] == LABEL_FACTORIZATION
        # A variant of the stored query arriving through the rewriting
        # step upgrades the existing representative instead of inserting.
        variant = parse_query("q(B) :- r(B)")
        merge_expansion(
            state,
            Expansion(query, (CandidateQuery(variant, LABEL_REWRITING),)),
            max_queries=10,
        )
        assert state.labels[candidate] == LABEL_REWRITING
        assert variant not in state.frontier.pending
        assert len(state.store) == 2  # initial + candidate; variant interned away
        assert state.statistics.generated_by_rewriting == 1
        assert state.statistics.generated_by_factorization == 1

    def test_pruned_candidates_are_counted_and_dropped(self):
        query, state = self._state()
        merge_expansion(
            state,
            Expansion(
                query,
                (CandidateQuery(parse_query("q(A) :- r(A)"), LABEL_REWRITING, pruned=True),),
            ),
            max_queries=10,
        )
        assert state.statistics.pruned_by_constraints == 1
        assert len(state.store) == 1

    def test_budget_is_enforced_at_the_merge_point(self):
        query, state = self._state()
        expansion = Expansion(
            query,
            tuple(
                CandidateQuery(parse_query(f"q(A) :- r{i}(A)"), LABEL_REWRITING)
                for i in range(5)
            ),
        )
        with pytest.raises(RewritingBudgetExceeded):
            merge_expansion(state, expansion, max_queries=3)

    def test_eliminated_atoms_accumulate(self):
        query, state = self._state()
        merge_expansion(
            state,
            Expansion(
                query,
                (
                    CandidateQuery(
                        parse_query("q(A) :- r(A)"), LABEL_REWRITING, eliminated_atoms=2
                    ),
                ),
            ),
            max_queries=10,
        )
        assert state.statistics.eliminated_atoms == 2


class TestKernelEquivalence:
    def test_kernel_reproduces_known_rewriting_sizes(self):
        """The running example's pinned NY*/NY sizes survive the kernel."""
        workload = get_workload("S")
        star = TGDRewriter(workload.theory.tgds, use_elimination=True)
        plain = TGDRewriter(workload.theory.tgds)
        for name in workload.query_names:
            assert len(star.rewrite(workload.query(name)).ucq) <= len(
                plain.rewrite(workload.query(name)).ucq
            )
