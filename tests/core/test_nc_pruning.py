"""Tests for pruning with negative constraints (Section 5.1, Example 5)."""

from repro.core.nc_pruning import NegativeConstraintPruner, prune_unsatisfiable
from repro.core.rewriter import TGDRewriter
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.dependencies.constraints import NegativeConstraint
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import (
    example5_constraint,
    example5_query,
    example5_rule,
)

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y = Variable("X"), Variable("Y")


class TestPruner:
    def test_query_embedding_a_constraint_body_is_unsatisfiable(self):
        pruner = NegativeConstraintPruner([example5_constraint()])
        violating = ConjunctiveQuery(
            [Atom.of("r", A, B), Atom.of("t", C), Atom.of("s", B)], ()
        )
        assert pruner.is_unsatisfiable(violating)
        assert pruner.violated_by(violating) is example5_constraint() or (
            pruner.violated_by(violating).label == "ex5_nu"
        )

    def test_query_not_embedding_any_constraint_is_kept(self):
        pruner = NegativeConstraintPruner([example5_constraint()])
        assert not pruner.is_unsatisfiable(example5_query())

    def test_constraint_variables_are_matched_homomorphically(self):
        constraint = NegativeConstraint((Atom.of("p", X, X),))
        pruner = NegativeConstraintPruner([constraint])
        assert pruner.is_unsatisfiable(ConjunctiveQuery([Atom.of("p", A, A)], ()))
        assert not pruner.is_unsatisfiable(ConjunctiveQuery([Atom.of("p", A, B)], ()))

    def test_prune_unsatisfiable_helper(self):
        queries = [
            example5_query(),
            ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B)], ()),
        ]
        kept = prune_unsatisfiable(queries, [example5_constraint()])
        assert kept == [example5_query()]


class TestExample5EndToEnd:
    def test_nc_pruning_removes_the_spurious_query(self):
        """The query r(A,B), t(V1), s(B) of Example 5 is pruned from the rewriting."""
        rules = [example5_rule()]
        constraint = example5_constraint()
        query = example5_query()

        without_pruning = TGDRewriter(rules).rewrite(query)
        with_pruning = TGDRewriter(
            rules, negative_constraints=[constraint], use_nc_pruning=True
        ).rewrite(query)

        def violates(cq):
            return NegativeConstraintPruner([constraint]).is_unsatisfiable(cq)

        assert any(violates(cq) for cq in without_pruning.ucq)
        assert not any(violates(cq) for cq in with_pruning.ucq)
        assert len(with_pruning.ucq) < len(without_pruning.ucq)
        assert with_pruning.statistics.pruned_by_constraints >= 1

    def test_unsatisfiable_input_query_yields_the_empty_rewriting(self):
        rules = [example5_rule()]
        constraint = example5_constraint()
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B)], ())
        result = TGDRewriter(
            rules, negative_constraints=[constraint], use_nc_pruning=True
        ).rewrite(query)
        assert len(result.ucq) == 0
