"""Tests for the dependency graph (Definition 3, Figure 2)."""

from repro.core.dependency_graph import DependencyGraph
from repro.logic.atoms import Atom, Position, Predicate
from repro.logic.terms import Variable
from repro.dependencies.tgd import tgd
from repro.workloads.paper_examples import example6_rules

X, Y = Variable("X"), Variable("Y")

P = Predicate("p", 2)
R = Predicate("r", 3)
S = Predicate("s", 3)


class TestFigure2:
    """The dependency graph of Example 6 must match Figure 2 exactly."""

    def setup_method(self):
        self.rules = example6_rules()
        self.sigma1, self.sigma2, self.sigma3 = self.rules
        self.graph = DependencyGraph(self.rules)

    def test_nodes_cover_all_schema_positions(self):
        expected = {
            Position(P, 1), Position(P, 2),
            Position(R, 1), Position(R, 2), Position(R, 3),
            Position(S, 1), Position(S, 2), Position(S, 3),
        }
        assert expected <= self.graph.nodes

    def test_sigma1_edges(self):
        # σ1 : p(X, Y) -> ∃Z r(X, Y, Z): p[1] -> r[1] and p[2] -> r[2].
        assert self.graph.has_edge(Position(P, 1), Position(R, 1), self.sigma1)
        assert self.graph.has_edge(Position(P, 2), Position(R, 2), self.sigma1)
        assert not self.graph.has_edge(Position(P, 1), Position(R, 3), self.sigma1)

    def test_sigma2_edges(self):
        # σ2 : r(X, Y, c) -> s(X, Y, Y): r[1] -> s[1], r[2] -> s[2], r[2] -> s[3].
        assert self.graph.has_edge(Position(R, 1), Position(S, 1), self.sigma2)
        assert self.graph.has_edge(Position(R, 2), Position(S, 2), self.sigma2)
        assert self.graph.has_edge(Position(R, 2), Position(S, 3), self.sigma2)
        assert not self.graph.has_edge(Position(R, 3), Position(S, 1), self.sigma2)

    def test_sigma3_edges(self):
        # σ3 : s(X, X, Y) -> p(X, Y): s[1] -> p[1], s[2] -> p[1], s[3] -> p[2].
        assert self.graph.has_edge(Position(S, 1), Position(P, 1), self.sigma3)
        assert self.graph.has_edge(Position(S, 2), Position(P, 1), self.sigma3)
        assert self.graph.has_edge(Position(S, 3), Position(P, 2), self.sigma3)

    def test_total_edge_count_matches_figure2(self):
        assert len(self.graph.edges) == 8

    def test_edges_labelled_by_rule(self):
        assert len(self.graph.edges_labelled(self.sigma1)) == 2
        assert len(self.graph.edges_labelled(self.sigma2)) == 3
        assert len(self.graph.edges_labelled(self.sigma3)) == 3

    def test_successors_follow_one_labelled_edge(self):
        successors = self.graph.successors({Position(P, 1)}, self.sigma1)
        assert successors == {Position(R, 1)}

    def test_walk_enumerates_labelled_paths(self):
        # p[1] --σ1--> r[1] --σ2--> s[1] --σ3--> p[1]
        paths = list(
            self.graph.walk(Position(P, 1), [self.sigma1, self.sigma2, self.sigma3])
        )
        assert (Position(P, 1), Position(R, 1), Position(S, 1), Position(P, 1)) in paths

    def test_to_dot_renders_every_edge(self):
        dot = self.graph.to_dot()
        assert dot.startswith("digraph")
        assert dot.count("->") == len(self.graph.edges)


class TestGeneralGraphs:
    def test_existential_positions_have_no_incoming_edges_from_body(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        graph = DependencyGraph([rule])
        assert graph.edges_from(Position(Predicate("p", 1), 1)) == (
            graph.edges[0],
        )
        assert graph.edges[0].target == Position(Predicate("q", 2), 1)

    def test_constants_induce_no_edges(self):
        from repro.logic.terms import Constant

        rule = tgd(Atom.of("p", Constant("a"), X), Atom.of("q", Constant("a"), X))
        graph = DependencyGraph([rule])
        assert len(graph.edges) == 1  # only the X edge

    def test_repr_summarises_size(self):
        graph = DependencyGraph(example6_rules())
        assert "8 edges" in repr(graph)
