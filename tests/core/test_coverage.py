"""Tests for atom coverage (Definition 5, Examples 7 and 8)."""

import pytest

from repro.core.coverage import CoverageChecker, covers
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.normalization import normalize
from repro.dependencies.tgd import TGD, tgd
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import example6_rules, example7_query, example8_query
from repro.workloads import stock_exchange_example

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")
X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestExample7:
    """cover(a) = ∅, cover(b) = {a}, cover(c) = ∅ for the Example 7 query."""

    def setup_method(self):
        self.checker = CoverageChecker(example6_rules())
        self.query = example7_query()  # q() <- p(A,B), r(A,B,C), s(A,A,D)
        self.p_atom, self.r_atom, self.s_atom = self.query.body

    def test_cover_of_p_is_empty(self):
        assert self.checker.cover_set(self.p_atom, self.query) == frozenset()

    def test_cover_of_r_is_p(self):
        assert self.checker.cover_set(self.r_atom, self.query) == {self.p_atom}

    def test_cover_of_s_is_empty(self):
        assert self.checker.cover_set(self.s_atom, self.query) == frozenset()

    def test_cover_sets_helper(self):
        sets = self.checker.cover_sets(self.query)
        assert sets[self.r_atom] == {self.p_atom}
        assert sets[self.p_atom] == frozenset()

    def test_witness_chain_uses_sigma1(self):
        witness = self.checker.covers(self.p_atom, self.r_atom, self.query)
        assert witness is not None
        assert [rule.label for rule in witness.chain] == ["ex6_sigma1"]


class TestExample8:
    """Implication beyond coverage: r(A, A, c) implies p(A, A) but does not cover it."""

    def test_r_does_not_cover_p(self):
        checker = CoverageChecker(example6_rules())
        query = example8_query()
        r_atom, p_atom = query.body
        assert checker.covers(r_atom, p_atom, query) is None


class TestCoverageConditions:
    def test_condition_i_missing_shared_term_blocks_coverage(self):
        # b carries the shared variable D which does not occur in a.
        rules = [tgd(Atom.of("p", X, Y), Atom.of("r", X, Y))]
        query = ConjunctiveQuery(
            [Atom.of("p", A, B), Atom.of("r", A, D), Atom.of("s", D)], ()
        )
        checker = CoverageChecker(rules)
        assert checker.covers(query.body[0], query.body[1], query) is None

    def test_constants_must_be_carried_by_the_covering_atom(self):
        rules = [tgd(Atom.of("p", X, Y), Atom.of("r", X, Y))]
        query = ConjunctiveQuery(
            [Atom.of("p", A, B), Atom.of("r", A, Constant("c"))], ()
        )
        checker = CoverageChecker(rules)
        assert checker.covers(query.body[0], query.body[1], query) is None

    def test_simple_domain_axiom_coverage(self):
        # has_stock(A, B) covers person(A) when ∃has_stock ⊑ person.
        rules = [tgd(Atom.of("has_stock", X, Y), Atom.of("person", X))]
        query = ConjunctiveQuery([Atom.of("person", A), Atom.of("has_stock", A, B)], (A,))
        assert covers(query.body[1], query.body[0], query, rules)
        assert not covers(query.body[0], query.body[1], query, rules)

    def test_multi_step_chain_coverage(self):
        # teacher_of(A, B) covers person(A) through faculty ⊑ employee ⊑ person.
        rules = [
            tgd(Atom.of("teacher_of", X, Y), Atom.of("faculty", X)),
            tgd(Atom.of("faculty", X), Atom.of("employee", X)),
            tgd(Atom.of("employee", X), Atom.of("person", X)),
        ]
        query = ConjunctiveQuery([Atom.of("person", A), Atom.of("teacher_of", A, B)], (A,))
        assert covers(query.body[1], query.body[0], query, rules)

    def test_equality_type_breaks_a_chain(self):
        # The middle rule requires its argument positions to be equal, which
        # the head of the first rule does not guarantee.
        rules = [
            tgd(Atom.of("a", X, Y), Atom.of("b", X, Y)),
            tgd(Atom.of("b", X, X), Atom.of("d", X)),
        ]
        query = ConjunctiveQuery([Atom.of("a", A, B), Atom.of("d", A)], ())
        assert not covers(query.body[0], query.body[1], query, rules)

    def test_per_term_chains_would_be_unsound(self):
        # σA : p(X, Y) -> ∃W r(X, W) and σB : p(X, Y) -> ∃W r(W, Y).
        # Each shared term of r(A, B) individually reaches its position, but
        # no single chain carries both, and indeed chase({p(a,b)}) contains no
        # atom r(a, b) — so coverage must NOT hold (see DESIGN.md).
        rules = [
            tgd(Atom.of("p", X, Y), Atom.of("r", X, W)),
            tgd(Atom.of("p", X, Y), Atom.of("r", W, Y)),
        ]
        query = ConjunctiveQuery(
            [Atom.of("p", A, B), Atom.of("r", A, B), Atom.of("s", A), Atom.of("s", B)], ()
        )
        checker = CoverageChecker(rules)
        assert checker.covers(query.body[0], query.body[1], query) is None

    def test_atom_does_not_cover_itself(self):
        rules = [tgd(Atom.of("p", X), Atom.of("p", X))]
        query = ConjunctiveQuery([Atom.of("p", A)], ())
        checker = CoverageChecker(rules)
        assert checker.covers(query.body[0], query.body[0], query) is None


class TestRunningExampleCoverage:
    """Section 1: the redundant atoms of the financial query are covered."""

    def setup_method(self):
        rules = normalize(stock_exchange_example.tgds()).rules
        self.checker = CoverageChecker(list(rules))
        self.query = stock_exchange_example.running_query()
        (
            self.fin_ins,
            self.stock_portf,
            self.company,
            self.list_comp,
            self.fin_idx,
        ) = self.query.body

    def test_fin_ins_is_covered_by_stock_portf(self):
        # σ2 then σ8: stock_portf(B, A, D) implies stock(A, ...) implies fin_ins(A).
        assert self.checker.covers(self.stock_portf, self.fin_ins, self.query) is not None

    def test_company_is_covered_by_stock_portf(self):
        # σ1: stock_portf(B, A, D) implies company(B, ...).
        assert self.checker.covers(self.stock_portf, self.company, self.query) is not None

    def test_fin_idx_is_covered_by_list_comp(self):
        # σ3: list_comp(A, C) implies fin_idx(C, ...).
        assert self.checker.covers(self.list_comp, self.fin_idx, self.query) is not None

    def test_stock_portf_and_list_comp_are_not_covered(self):
        assert self.checker.cover_set(self.stock_portf, self.query) == frozenset()
        assert self.checker.cover_set(self.list_comp, self.query) == frozenset()


class TestCheckerValidation:
    def test_non_linear_rules_are_rejected(self):
        rule = TGD((Atom.of("p", X), Atom.of("q", X, Y)), (Atom.of("r", X),))
        with pytest.raises(ValueError):
            CoverageChecker([rule])

    def test_unnormalised_rules_are_rejected(self):
        rule = tgd(Atom.of("p", X), Atom.of("r", X, Y, Z))
        with pytest.raises(ValueError):
            CoverageChecker([rule])
