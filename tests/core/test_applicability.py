"""Tests for Definition 1 (applicability) and Definition 2 (factorizability)."""

import pytest

from repro.core.applicability import (
    applicable_atom_sets,
    factorizable_sets,
    is_applicable,
    is_factorizable,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import TGD, tgd
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import (
    example1_queries,
    example1_rule,
    example2_rules,
    example3_queries,
)

A, B, C, E = Variable("A"), Variable("B"), Variable("C"), Variable("E")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
c = Constant("c")


class TestApplicability:
    def setup_method(self):
        self.sigma1, self.sigma2 = example2_rules()  # s(X) -> ∃Z t(X,X,Z); t(X,Y,Z) -> r(Y,Z)

    def test_example2_sigma2_applies_to_r_atom(self):
        query = ConjunctiveQuery([Atom.of("t", A, B, C), Atom.of("r", B, C)], ())
        assert is_applicable(self.sigma2, [Atom.of("r", B, C)], query)

    def test_example2_sigma1_blocked_by_shared_variable(self):
        # In q() <- t(A,B,C), r(B,C) the variable C is shared and sits at the
        # existential position t[3] of σ1, so σ1 is not applicable.
        query = ConjunctiveQuery([Atom.of("t", A, B, C), Atom.of("r", B, C)], ())
        assert not is_applicable(self.sigma1, [Atom.of("t", A, B, C)], query)

    def test_example3_constant_at_existential_position_blocks(self):
        query = example3_queries()["constant"]  # q() <- t(A, B, c)
        assert not is_applicable(self.sigma1, list(query.body), query)

    def test_example3_shared_variable_at_existential_position_blocks(self):
        query = example3_queries()["shared"]  # q() <- t(A, B, B)
        assert not is_applicable(self.sigma1, list(query.body), query)

    def test_unifiable_unshared_atom_is_applicable(self):
        query = ConjunctiveQuery([Atom.of("t", A, B, C)], ())
        assert is_applicable(self.sigma1, [Atom.of("t", A, B, C)], query)

    def test_head_predicate_must_match(self):
        query = ConjunctiveQuery([Atom.of("r", B, C)], ())
        assert not is_applicable(self.sigma1, [Atom.of("r", B, C)], query)

    def test_answer_variable_counts_as_shared(self):
        # A occurs once in the body but also in the head of the CQ, so it is
        # shared and blocks an existential position.
        rule = tgd(Atom.of("p", X), Atom.of("t", X, Y))
        query = ConjunctiveQuery([Atom.of("t", B, A)], (A,))
        assert not is_applicable(rule, [Atom.of("t", B, A)], query)

    def test_non_unifiable_set_is_not_applicable(self):
        rule = tgd(Atom.of("p", X), Atom.of("t", X, X))
        query = ConjunctiveQuery([Atom.of("t", Constant("a"), Constant("b"))], ())
        assert not is_applicable(rule, list(query.body), query)

    def test_full_rule_ignores_existential_conditions(self):
        rule = tgd(Atom.of("p", X, Y), Atom.of("t", X, Y))
        query = ConjunctiveQuery([Atom.of("t", A, c), Atom.of("s", A)], ())
        assert is_applicable(rule, [Atom.of("t", A, c)], query)

    def test_empty_atom_set_is_not_applicable(self):
        query = ConjunctiveQuery([Atom.of("t", A, B, C)], ())
        assert not is_applicable(self.sigma1, [], query)

    def test_unnormalised_rule_is_rejected(self):
        rule = TGD((Atom.of("p", X),), (Atom.of("q", X), Atom.of("r", X)))
        query = ConjunctiveQuery([Atom.of("q", A)], ())
        with pytest.raises(ValueError):
            is_applicable(rule, [Atom.of("q", A)], query)


class TestApplicableAtomSets:
    def test_enumeration_respects_applicability(self):
        sigma1, sigma2 = example2_rules()
        query = ConjunctiveQuery([Atom.of("t", A, B, C), Atom.of("r", B, C)], ())
        assert list(applicable_atom_sets(sigma1, query)) == []
        assert list(applicable_atom_sets(sigma2, query)) == [(Atom.of("r", B, C),)]

    def test_multi_atom_sets_are_enumerated(self):
        rule = tgd(Atom.of("p", X), Atom.of("t", X, Y))
        query = ConjunctiveQuery([Atom.of("t", A, B), Atom.of("t", A, C)], ())
        sets = list(applicable_atom_sets(rule, query))
        assert (Atom.of("t", A, B),) in sets
        assert (Atom.of("t", A, C),) in sets
        assert (Atom.of("t", A, B), Atom.of("t", A, C)) in sets

    def test_no_candidate_atoms_yields_nothing(self):
        rule = tgd(Atom.of("p", X), Atom.of("missing", X))
        query = ConjunctiveQuery([Atom.of("t", A, B)], ())
        assert list(applicable_atom_sets(rule, query)) == []


class TestFactorizability:
    def setup_method(self):
        self.rule = example1_rule()  # s(X), r(X, Y) -> ∃Z t(X, Y, Z)
        self.queries = example1_queries()

    def test_example1_s1_is_factorizable(self):
        query = self.queries["q1"]  # q() <- t(A,B,C), t(A,E,C)
        found = list(factorizable_sets(self.rule, query))
        assert len(found) == 1
        assert set(found[0].atoms) == set(query.body)
        assert found[0].variable == C
        assert is_factorizable(self.rule, query.body, query)

    def test_example1_s2_is_not_factorizable(self):
        # C also occurs in s(C) outside the candidate set.
        query = self.queries["q2"]
        assert list(factorizable_sets(self.rule, query)) == []

    def test_example1_s3_is_not_factorizable(self):
        # C occurs at position t[2] as well, not only at the existential
        # position t[3].
        query = self.queries["q3"]
        assert list(factorizable_sets(self.rule, query)) == []

    def test_factorization_unifier_collapses_the_set(self):
        query = self.queries["q1"]
        factorizable = next(iter(factorizable_sets(self.rule, query)))
        collapsed = {factorizable.unifier.apply_atom(atom) for atom in factorizable.atoms}
        assert len(collapsed) == 1

    def test_full_rules_admit_no_factorization(self):
        rule = tgd(Atom.of("p", X, Y), Atom.of("t", X, Y))
        query = ConjunctiveQuery([Atom.of("t", A, B), Atom.of("t", A, C)], ())
        assert list(factorizable_sets(rule, query)) == []

    def test_answer_variable_cannot_witness_factorization(self):
        rule = tgd(Atom.of("p", X), Atom.of("t", X, Y))
        query = ConjunctiveQuery([Atom.of("t", A, B), Atom.of("t", C, B)], (B,))
        assert list(factorizable_sets(rule, query)) == []

    def test_singleton_sets_are_not_factorizable(self):
        rule = tgd(Atom.of("p", X), Atom.of("t", X, Y))
        query = ConjunctiveQuery([Atom.of("t", A, B)], ())
        assert not is_factorizable(rule, [Atom.of("t", A, B)], query)
