"""The ``strategy="auto"`` autotuner: registry, policy, and byte-identity."""

import pytest

from repro import scheduling
from repro.core.rewriter import TGDRewriter
from repro.scheduling import (
    AutoStrategy,
    SequentialStrategy,
    create_strategy,
    strategy_names,
)
from repro.serving.resilience import InterruptibleStrategy
from repro.serving.tenants import SharedArtifacts
from repro.workloads.stock_exchange_example import running_query, theory


class _StubRuleIndex:
    def __init__(self, fan_out: int) -> None:
        self._fan_out = fan_out

    def fan_out(self, query) -> int:
        return self._fan_out


class _StubEngine:
    def __init__(self, fan_out: int) -> None:
        self.rule_index = _StubRuleIndex(fan_out)


class TestRegistry:
    def test_auto_is_registered(self):
        assert "auto" in strategy_names()

    def test_create_strategy_builds_the_tuner(self):
        strategy = create_strategy("auto")
        try:
            assert isinstance(strategy, AutoStrategy)
            assert strategy.name == "auto"
        finally:
            strategy.close()

    def test_workers_resolve_like_every_other_strategy(self):
        strategy = create_strategy("auto", workers=3)
        try:
            assert strategy.workers == 3
        finally:
            strategy.close()


class TestPolicy:
    """The decision function over its observable inputs (no timing feedback)."""

    def test_single_worker_always_sequential(self):
        strategy = AutoStrategy(workers=1)
        try:
            strategy.begin_run(_StubEngine(fan_out=10_000), None)
            for width in (1, AutoStrategy.SMALL_GENERATION, 10_000):
                assert isinstance(strategy._choose(width), SequentialStrategy)
        finally:
            strategy.close()

    def test_narrow_generations_stay_sequential(self):
        strategy = AutoStrategy(workers=4)
        try:
            strategy.begin_run(_StubEngine(fan_out=10_000), None)
            chosen = strategy._choose(AutoStrategy.SMALL_GENERATION - 1)
            assert isinstance(chosen, SequentialStrategy)
        finally:
            strategy.close()

    def test_large_work_products_go_chunked(self):
        strategy = AutoStrategy(workers=4)
        try:
            strategy.begin_run(_StubEngine(fan_out=512), None)
            width = AutoStrategy.CHUNK_WORK_THRESHOLD // 512
            chosen = strategy._choose(width)
            assert chosen.name == "chunked"
        finally:
            strategy.close()

    def test_middle_band_depends_on_the_gil(self, monkeypatch):
        strategy = AutoStrategy(workers=4)
        try:
            strategy.begin_run(_StubEngine(fan_out=1), None)
            width = AutoStrategy.SMALL_GENERATION
            monkeypatch.setattr(scheduling, "_gil_enabled", lambda: True)
            assert isinstance(strategy._choose(width), SequentialStrategy)
            monkeypatch.setattr(scheduling, "_gil_enabled", lambda: False)
            assert strategy._choose(width).name == "threaded"
        finally:
            strategy.close()

    def test_begin_run_captures_the_rule_fan_out(self):
        engine = TGDRewriter(theory().tgds)
        strategy = AutoStrategy()
        try:
            query = running_query()
            strategy.begin_run(engine, query, generation=3)
            assert strategy._fan_out == engine.rule_index.fan_out(query)
            assert strategy._generation == 3
        finally:
            strategy.close()


class TestByteIdentity:
    def test_auto_rewriting_matches_sequential(self):
        example = theory()
        reference = TGDRewriter(example.tgds).rewrite(running_query())
        auto_engine = TGDRewriter(example.tgds, strategy="auto")
        try:
            candidate = auto_engine.rewrite(running_query())
        finally:
            auto_engine.strategy.close()
        assert candidate.ucq.queries == reference.ucq.queries
        assert [m.canonical_key for m in candidate.ucq] == [
            m.canonical_key for m in reference.ucq
        ]

    def test_decisions_counter_records_every_generation(self):
        auto_engine = TGDRewriter(theory().tgds, strategy="auto")
        try:
            auto_engine.rewrite(running_query())
            decisions = auto_engine.strategy.decisions
        finally:
            auto_engine.strategy.close()
        assert sum(decisions.values()) > 0
        assert set(decisions) == {"sequential", "threaded", "chunked"}


class TestIntegrationSeams:
    def test_interruptible_wrapper_forwards_begin_run(self):
        inner = AutoStrategy()
        wrapper = InterruptibleStrategy(inner)
        try:
            wrapper.begin_run(_StubEngine(fan_out=17), None, generation=2)
            assert inner._fan_out == 17
            assert inner._generation == 2
        finally:
            wrapper.close()

    def test_serving_tier_defaults_to_auto(self):
        artifacts = SharedArtifacts(theory())
        try:
            assert isinstance(artifacts.strategy, InterruptibleStrategy)
            assert isinstance(artifacts.strategy.inner, AutoStrategy)
        finally:
            artifacts.release()

    def test_base_begin_run_is_a_no_op(self):
        # Strategies that don't care about telemetry inherit a do-nothing
        # hook, so the rewriter can call it unconditionally.
        SequentialStrategy().begin_run(_StubEngine(fan_out=5), None)
