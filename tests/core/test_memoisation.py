"""Engine memoisation: identical rewritings, fewer unifications.

The rename-apart pool and the applicability memo are pure caches: with
them on or off the engine must produce rewritings of exactly the same
sizes (the members may differ in variable naming only, which interning
treats as equal).  These tests pin that equivalence and the soundness of
the profile-keyed memo itself.
"""

import pytest

from repro.core.applicability import (
    ApplicabilityMemo,
    RenameApartCache,
    applicable_atom_sets,
    is_applicable,
)
from repro.core.rewriter import TGDRewriter
from repro.dependencies.tgd import tgd
from repro.logic.atoms import Atom
from repro.logic.terms import Variable, VariableFactory
from repro.logic.unification import UnificationMemo, atom_sequence_profile
from repro.queries.parser import parse_query
from repro.workloads import get_workload, stock_exchange_example

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestAtomSequenceProfile:
    def test_invariant_under_renaming(self):
        first = [Atom.of("p", X, Y), Atom.of("q", Y, Z)]
        second = [Atom.of("p", Z, X), Atom.of("q", X, Y)]
        assert atom_sequence_profile(first) == atom_sequence_profile(second)

    def test_distinguishes_equality_patterns(self):
        joined = [Atom.of("p", X, X)]
        spread = [Atom.of("p", X, Y)]
        assert atom_sequence_profile(joined) != atom_sequence_profile(spread)

    def test_marked_variables_split_profiles(self):
        atoms = [Atom.of("p", X, Y)]
        assert atom_sequence_profile(atoms) != atom_sequence_profile(
            atoms, marked={Y}
        )

    def test_constants_kept_by_identity(self):
        from repro.logic.terms import Constant

        acme = [Atom.of("p", X, Constant("acme"))]
        ibm = [Atom.of("p", X, Constant("ibm"))]
        assert atom_sequence_profile(acme) != atom_sequence_profile(ibm)


class TestUnificationMemo:
    def test_lookup_computes_once(self):
        memo = UnificationMemo()
        calls = []
        for _ in range(3):
            outcome = memo.lookup("key", lambda: calls.append(1) or "value")
        assert outcome == "value"
        assert len(calls) == 1
        assert (memo.hits, memo.misses) == (2, 1)

    def test_false_outcomes_are_cached_too(self):
        memo = UnificationMemo()
        assert memo.lookup("key", lambda: False) is False
        assert memo.lookup("key", lambda: True) is False  # cached, not recomputed
        assert memo.hits == 1


class TestRenameApartCache:
    RULE = tgd(Atom.of("person", X), Atom.of("has_parent", X, Z))

    def test_returned_copy_avoids_the_query_variables(self):
        cache = RenameApartCache()
        fresh = VariableFactory(prefix="W")
        query = parse_query("q(A) :- has_parent(A, B)")
        copy = cache.rename(0, self.RULE, query.variables, fresh)
        assert (copy.body_variables | copy.head_variables).isdisjoint(query.variables)

    def test_pool_is_reused_for_disjoint_queries(self):
        cache = RenameApartCache()
        fresh = VariableFactory(prefix="W")
        first = cache.rename(0, self.RULE, parse_query("q(A) :- p(A)").variables, fresh)
        second = cache.rename(0, self.RULE, parse_query("q(B) :- p(B)").variables, fresh)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clashing_copy_is_never_served(self):
        cache = RenameApartCache()
        fresh = VariableFactory(prefix="W")
        first = cache.rename(0, self.RULE, frozenset({X}), fresh)
        clash = frozenset(first.body_variables)
        second = cache.rename(0, self.RULE, clash, fresh)
        assert (second.body_variables | second.head_variables).isdisjoint(clash)
        assert second is not first


class TestApplicabilityMemoSoundness:
    def test_memoised_answers_match_direct_answers(self):
        # Drive both the memoised and the direct check over every candidate
        # subset the running example's rewriting would enumerate.
        theory = stock_exchange_example.theory()
        rules = TGDRewriter(theory.tgds).rules
        memo = ApplicabilityMemo()
        fresh = VariableFactory(prefix="W")
        queries = [
            stock_exchange_example.running_query(),
            parse_query("q() :- stock_portf(B, A, D), has_stock(A, B), fin_ins(A)"),
        ]
        checked = 0
        for query in queries:
            for key, rule in enumerate(rules):
                renamed = rule.rename_apart(query.variables, fresh)
                direct = {
                    subset for subset in applicable_atom_sets(renamed, query)
                }
                memoised = {
                    subset
                    for subset in applicable_atom_sets(
                        renamed, query, memo=memo, rule_key=key
                    )
                }
                assert direct == memoised
                checked += 1
        assert checked == 2 * len(rules)


@pytest.mark.parametrize("workload_name", ["S", "P5"])
class TestMemoisationPreservesSizes:
    def test_identical_rewriting_sizes_with_and_without_memo(self, workload_name):
        workload = get_workload(workload_name)
        with_memo = TGDRewriter(workload.theory.tgds, use_memoisation=True)
        without_memo = TGDRewriter(workload.theory.tgds, use_memoisation=False)
        for name in workload.query_names:
            query = workload.query(name)
            memoised = with_memo.rewrite(query)
            plain = without_memo.rewrite(query)
            assert len(memoised.ucq) == len(plain.ucq), name
            assert memoised.statistics.unification_memo_hits >= 0
            assert plain.statistics.unification_memo_hits == 0
            assert plain.statistics.rename_cache_hits == 0

    def test_memo_actually_fires_across_a_workload(self, workload_name):
        workload = get_workload(workload_name)
        rewriter = TGDRewriter(workload.theory.tgds)
        total_hits = 0
        for name in workload.query_names:
            statistics = rewriter.rewrite(workload.query(name)).statistics
            total_hits += statistics.unification_memo_hits
            total_hits += statistics.rename_cache_hits
        assert total_hits > 0
