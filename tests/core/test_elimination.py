"""Tests for query elimination (Section 6, Example 7, Lemma 9)."""

import itertools

import pytest

from repro.core.elimination import QueryEliminator, eliminate
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.dependencies.normalization import normalize
from repro.dependencies.tgd import tgd
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import example6_rules, example7_query
from repro.workloads import stock_exchange_example

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y = Variable("X"), Variable("Y")


class TestExample7:
    def test_only_the_r_atom_is_eliminated(self):
        eliminator = QueryEliminator(example6_rules())
        query = example7_query()
        result = eliminator.eliminate_atoms(query)
        assert [atom.name for atom in result.eliminated] == ["r"]
        assert {atom.name for atom in result.reduced.body} == {"p", "s"}
        assert result.removed_count == 1

    def test_one_shot_helper(self):
        reduced = eliminate(example7_query(), example6_rules())
        assert {atom.name for atom in reduced.body} == {"p", "s"}


class TestLemma9:
    """Every elimination strategy removes the same number of atoms."""

    def test_all_permutations_of_example7_remove_one_atom(self):
        eliminator = QueryEliminator(example6_rules())
        query = example7_query()
        counts = set()
        for order in itertools.permutations(query.body):
            counts.add(eliminator.eliminate_atoms(query, strategy=order).removed_count)
        assert counts == {1}

    def test_mutual_cover_keeps_exactly_one_atom(self):
        # p(A, B) and q(A, B) cover each other; exactly one survives whatever
        # the strategy.
        rules = [
            tgd(Atom.of("p", X, Y), Atom.of("q", X, Y)),
            tgd(Atom.of("q", X, Y), Atom.of("p", X, Y)),
        ]
        query = ConjunctiveQuery([Atom.of("p", A, B), Atom.of("q", A, B)], ())
        eliminator = QueryEliminator(rules)
        for order in itertools.permutations(query.body):
            result = eliminator.eliminate_atoms(query, strategy=order)
            assert result.removed_count == 1
            assert len(result.reduced.body) == 1

    def test_all_permutations_on_the_running_example(self):
        rules = list(normalize(stock_exchange_example.tgds()).rules)
        eliminator = QueryEliminator(rules)
        query = stock_exchange_example.running_query()
        counts = {
            eliminator.eliminate_atoms(query, strategy=order).removed_count
            for order in itertools.permutations(query.body)
        }
        assert counts == {3}


class TestRunningExample:
    def test_section1_reduction(self):
        """fin_ins, company and fin_idx are dropped; stock_portf and list_comp remain."""
        rules = list(normalize(stock_exchange_example.tgds()).rules)
        reduced = eliminate(stock_exchange_example.running_query(), rules)
        assert {atom.name for atom in reduced.body} == {"stock_portf", "list_comp"}
        expected = stock_exchange_example.reduced_query()
        assert reduced.is_variant_of(expected)


class TestEliminatorValidation:
    def test_strategy_must_be_a_permutation_of_the_body(self):
        eliminator = QueryEliminator(example6_rules())
        query = example7_query()
        with pytest.raises(ValueError):
            eliminator.eliminate_atoms(query, strategy=query.body[:1])

    def test_query_without_redundancy_is_unchanged(self):
        # The arguments of r are swapped w.r.t. what σ1 would produce, and the
        # equality type of body(σ2) requires the constant c at r[3], so no
        # atom covers any other.
        eliminator = QueryEliminator(example6_rules())
        query = ConjunctiveQuery([Atom.of("p", A, B), Atom.of("r", B, A, C)], ())
        result = eliminator.eliminate_atoms(query)
        assert result.removed_count == 0
        assert result.reduced.body == query.body

    def test_answer_variables_survive_elimination(self):
        rules = [tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y))]
        query = ConjunctiveQuery([Atom.of("has_stock", A, B), Atom.of("stock", B)], (A, B))
        reduced = eliminate(query, rules)
        assert reduced.body == (Atom.of("has_stock", A, B),)
        assert set(reduced.answer_terms) <= reduced.variables
