"""Tests for the head-predicate rule index driving the rewriting hot path."""

import pytest

from repro.core.applicability import RuleIndex
from repro.dependencies.tgd import TGD
from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Variable
from repro.queries.conjunctive_query import ConjunctiveQuery

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

#: σ1: s(X) → p(X, Y);  σ2: p(X, Y) → r(Y);  σ3: t(X) → p(X, X)
SIGMA1 = TGD((Atom.of("s", X),), (Atom.of("p", X, Y),))
SIGMA2 = TGD((Atom.of("p", X, Y),), (Atom.of("r", Y),))
SIGMA3 = TGD((Atom.of("t", X),), (Atom.of("p", X, X),))


def _query(*atoms):
    return ConjunctiveQuery(list(atoms), ())


class TestRuleIndex:
    def test_preserves_rule_order(self):
        index = RuleIndex([SIGMA1, SIGMA2, SIGMA3])
        assert index.rules == (SIGMA1, SIGMA2, SIGMA3)
        assert list(index) == [SIGMA1, SIGMA2, SIGMA3]
        assert len(index) == 3

    def test_rules_for_head_predicate(self):
        index = RuleIndex([SIGMA1, SIGMA2, SIGMA3])
        assert index.rules_for(Predicate("p", 2)) == (SIGMA1, SIGMA3)
        assert index.rules_for(Predicate("r", 1)) == (SIGMA2,)
        assert index.rules_for(Predicate("missing", 1)) == ()

    def test_head_predicates(self):
        index = RuleIndex([SIGMA1, SIGMA2, SIGMA3])
        assert index.head_predicates == {Predicate("p", 2), Predicate("r", 1)}

    def test_candidate_rules_touch_only_matching_heads(self):
        index = RuleIndex([SIGMA1, SIGMA2, SIGMA3])
        assert index.candidate_rules(_query(Atom.of("p", X, Y))) == [SIGMA1, SIGMA3]
        assert index.candidate_rules(_query(Atom.of("r", X))) == [SIGMA2]
        assert index.candidate_rules(_query(Atom.of("s", X))) == []

    def test_candidate_rules_preserve_global_order_across_predicates(self):
        index = RuleIndex([SIGMA1, SIGMA2, SIGMA3])
        candidates = index.candidate_rules(
            _query(Atom.of("r", X), Atom.of("p", X, Y))
        )
        assert candidates == [SIGMA1, SIGMA2, SIGMA3]

    def test_candidate_rules_ignore_arity_mismatches(self):
        """``p/1`` in a query must not pull in rules producing ``p/2``."""
        index = RuleIndex([SIGMA1, SIGMA3])
        assert index.candidate_rules(_query(Atom.of("p", X))) == []

    def test_rejects_unnormalised_rules(self):
        multi_head = TGD((Atom.of("s", X),), (Atom.of("p", X, Y), Atom.of("r", X)))
        with pytest.raises(ValueError):
            RuleIndex([multi_head])

    def test_empty_index(self):
        index = RuleIndex([])
        assert len(index) == 0
        assert index.head_predicates == frozenset()
        assert index.candidate_rules(_query(Atom.of("p", X, Y))) == []


class TestRewriterUsesTheIndex:
    def test_statistics_report_skipped_rules(self):
        from repro.core.rewriter import TGDRewriter

        rewriter = TGDRewriter([SIGMA1, SIGMA2, SIGMA3])
        result = rewriter.rewrite(_query(Atom.of("r", X)))
        statistics = result.statistics
        assert statistics.rules_considered > 0
        assert statistics.rules_skipped_by_index > 0
        assert rewriter.rule_index.rules == rewriter.rules

    def test_rewriting_agrees_with_full_scan_semantics(self):
        """The indexed engine must find every rewriting a full scan finds."""
        from repro.core.rewriter import TGDRewriter

        result = TGDRewriter([SIGMA1, SIGMA2, SIGMA3]).rewrite(
            _query(Atom.of("r", X))
        )
        bodies = {frozenset(repr(a) for a in cq.body) for cq in result.ucq}
        # r(X) ⇐ p(Y, X) ⇐ s(Y) and p(Y, X) ⇐ t(X) with X = Y.
        assert {"r(X)"} in bodies
        assert any("p(" in next(iter(b)) for b in bodies if len(b) == 1)
        assert len(result.ucq) >= 4
