"""Tests for the TGD chase procedure (Section 3.3)."""

from hypothesis import given, settings

from repro.chase.chase import ChaseEngine, certain_answers, chase, chase_entails
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable, is_null
from repro.dependencies.tgd import TGD, tgd
from repro.queries.conjunctive_query import ConjunctiveQuery

from ..conftest import ground_atoms, linear_tgd_sets
import hypothesis.strategies as st

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
A, B = Variable("A"), Variable("B")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestChaseRule:
    def test_full_rule_derives_new_fact(self):
        result = chase([Atom.of("student", a)], [tgd(Atom.of("student", X), Atom.of("person", X))])
        assert Atom.of("person", a) in result
        assert result.exhausted

    def test_existential_rule_invents_a_null(self):
        result = chase([Atom.of("person", a)], [tgd(Atom.of("person", X), Atom.of("has_id", X, Y))])
        invented = [atom for atom in result.atoms if atom.name == "has_id"]
        assert len(invented) == 1
        assert invented[0][1] == a
        assert is_null(invented[0][2])

    def test_no_applicable_rule_leaves_database_unchanged(self):
        result = chase([Atom.of("p", a)], [tgd(Atom.of("q", X), Atom.of("r", X))])
        assert result.atoms == {Atom.of("p", a)}
        assert result.applications == 0

    def test_paper_inclusion_dependency_example(self):
        # Section 1: list_comp(ibm, nasdaq) and ∃list_comp⁻ ⊑ fin_idx derive
        # fin_idx(nasdaq).
        rule = tgd(Atom.of("list_comp", X, Y), Atom.of("fin_idx", Y))
        result = chase([Atom.of("list_comp", Constant("ibm"), Constant("nasdaq"))], [rule])
        assert Atom.of("fin_idx", Constant("nasdaq")) in result

    def test_multi_head_rule_adds_all_head_atoms(self):
        rule = TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))
        result = chase([Atom.of("p", a)], [rule])
        assert any(atom.name == "q" for atom in result.atoms)
        assert any(atom.name == "r" for atom in result.atoms)
        # The invented value is shared between the two head atoms.
        q_atom = next(atom for atom in result.atoms if atom.name == "q")
        r_atom = next(atom for atom in result.atoms if atom.name == "r")
        assert q_atom[2] == r_atom[1]


class TestChaseVariants:
    def test_restricted_chase_reuses_satisfied_heads(self):
        # person(a) and has_id(a, b): the restricted chase does not invent a
        # second identifier, the oblivious chase does.
        rules = [tgd(Atom.of("person", X), Atom.of("has_id", X, Y))]
        database = [Atom.of("person", a), Atom.of("has_id", a, b)]
        restricted = chase(database, rules, variant="restricted")
        oblivious = chase(database, rules, variant="oblivious")
        assert len(restricted) == 2
        assert len(oblivious) == 3

    def test_unknown_variant_is_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ChaseEngine([], variant="lazy")

    def test_oblivious_chase_applies_each_trigger_once(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X, Y))]
        result = chase([Atom.of("p", a)], rules, variant="oblivious", max_depth=5)
        assert sum(1 for atom in result.atoms if atom.name == "q") == 1


class TestTermination:
    def test_weakly_acyclic_set_terminates(self):
        rules = [
            tgd(Atom.of("student", X), Atom.of("person", X)),
            tgd(Atom.of("person", X), Atom.of("has_id", X, Y)),
        ]
        result = chase([Atom.of("student", a), Atom.of("student", b)], rules)
        assert result.exhausted
        assert len(result) == 6

    def test_infinite_chase_is_truncated_by_depth(self):
        # person(X) -> ∃Y parent(X, Y); parent(X, Y) -> person(Y).
        rules = [
            tgd(Atom.of("person", X), Atom.of("parent", X, Y)),
            tgd(Atom.of("parent", X, Y), Atom.of("person", Y)),
        ]
        result = chase([Atom.of("person", a)], rules, max_depth=4)
        assert not result.exhausted
        assert result.max_level <= 4

    def test_max_atoms_bound(self):
        rules = [
            tgd(Atom.of("person", X), Atom.of("parent", X, Y)),
            tgd(Atom.of("parent", X, Y), Atom.of("person", Y)),
        ]
        result = chase([Atom.of("person", a)], rules, max_atoms=10)
        assert 10 <= len(result) <= 12

    def test_levels_track_derivation_depth(self):
        rules = [
            tgd(Atom.of("s", X), Atom.of("t", X)),
            tgd(Atom.of("t", X), Atom.of("u", X)),
        ]
        result = chase([Atom.of("s", a)], rules)
        assert result.levels[Atom.of("s", a)] == 0
        assert result.levels[Atom.of("t", a)] == 1
        assert result.levels[Atom.of("u", a)] == 2
        assert result.atoms_at_level(2) == {Atom.of("u", a)}


class TestChaseQueryAnswering:
    def test_chase_entails_boolean_query(self):
        rules = [tgd(Atom.of("student", X), Atom.of("person", X))]
        result = chase([Atom.of("student", a)], rules)
        assert chase_entails(result, ConjunctiveQuery([Atom.of("person", A)], ()))
        assert not chase_entails(result, ConjunctiveQuery([Atom.of("course", A)], ()))

    def test_certain_answers_exclude_nulls(self):
        rules = [tgd(Atom.of("person", X), Atom.of("parent", X, Y))]
        query = ConjunctiveQuery([Atom.of("parent", A, B)], (A, B))
        answers = certain_answers(query, [Atom.of("person", a)], rules)
        # The only parent fact has a null in the second position, so no tuple
        # of constants is a certain answer.
        assert answers == frozenset()

    def test_certain_answers_project_constants(self):
        rules = [tgd(Atom.of("person", X), Atom.of("parent", X, Y))]
        query = ConjunctiveQuery([Atom.of("parent", A, B)], (A,))
        answers = certain_answers(query, [Atom.of("person", a)], rules)
        assert answers == {(a,)}

    def test_example4_entailment(self):
        from repro.workloads.paper_examples import example4_query, example4_rules

        result = chase([Atom.of("p", a)], example4_rules())
        assert chase_entails(result, example4_query())


class TestChaseProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(ground_atoms(), min_size=1, max_size=5), linear_tgd_sets())
    def test_chase_contains_the_database(self, database, rules):
        result = chase(database, rules, max_depth=3, max_atoms=200)
        assert set(database) <= result.atoms

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ground_atoms(), min_size=1, max_size=4), linear_tgd_sets())
    def test_restricted_chase_is_no_larger_than_oblivious(self, database, rules):
        restricted = chase(database, rules, variant="restricted", max_depth=3, max_atoms=300)
        oblivious = chase(database, rules, variant="oblivious", max_depth=3, max_atoms=300)
        assert len(restricted) <= len(oblivious)
