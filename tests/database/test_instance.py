"""Tests for in-memory relational instances."""

import pytest

from repro.database.instance import RelationalInstance, database_from_tuples
from repro.database.schema import RelationalSchema
from repro.dependencies.constraints import KeyDependency
from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Constant, Variable

a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestMutation:
    def test_add_ground_atom(self):
        instance = RelationalInstance()
        assert instance.add(Atom.of("r", a, b))
        assert not instance.add(Atom.of("r", a, b))  # duplicate
        assert len(instance) == 1

    def test_non_ground_atoms_are_rejected(self):
        with pytest.raises(ValueError):
            RelationalInstance().add(Atom.of("r", Variable("X"), a))

    def test_add_tuple_wraps_python_values(self):
        instance = RelationalInstance()
        instance.add_tuple("stock", ("s1", "ACME", 12))
        assert Atom.of("stock", Constant("s1"), Constant("ACME"), Constant(12)) in instance

    def test_add_all_counts_new_facts(self):
        instance = RelationalInstance()
        added = instance.add_all([Atom.of("p", a), Atom.of("p", a), Atom.of("p", b)])
        assert added == 2

    def test_schema_is_extended_on_insert(self):
        schema = RelationalSchema()
        instance = RelationalInstance(schema=schema)
        instance.add_tuple("r", ("x", "y"))
        assert "r" in schema

    def test_database_from_tuples(self):
        instance = database_from_tuples([("r", ("x", "y")), ("p", ("x",))])
        assert len(instance) == 2


class TestInspection:
    def setup_method(self):
        self.instance = database_from_tuples(
            [("r", ("a", "b")), ("r", ("a", "c")), ("p", ("a",))]
        )

    def test_relation_lookup(self):
        assert len(self.instance.relation(Predicate("r", 2))) == 2
        assert len(self.instance.relation_by_name("p", 1)) == 1
        assert self.instance.relation(Predicate("missing", 1)) == frozenset()

    def test_predicates(self):
        assert {p.name for p in self.instance.predicates()} == {"r", "p"}

    def test_matching_uses_position_value_index(self):
        matches = self.instance.matching(Predicate("r", 2), {1: a})
        assert len(matches) == 2
        matches = self.instance.matching(Predicate("r", 2), {1: a, 2: c})
        assert matches == {Atom.of("r", a, c)}
        assert self.instance.matching(Predicate("r", 2), {2: Constant("zzz")}) == frozenset()

    def test_matching_without_bindings_returns_whole_relation(self):
        assert len(self.instance.matching(Predicate("r", 2), {})) == 2

    def test_constants_active_domain(self):
        assert self.instance.constants() == {a, b, c}

    def test_facts_is_a_frozen_copy(self):
        facts = self.instance.facts
        assert isinstance(facts, frozenset)
        assert len(facts) == 3


class TestKeySatisfaction:
    def test_key_violation_is_detected(self):
        instance = database_from_tuples([("r", ("k", "x")), ("r", ("k", "y"))])
        key = KeyDependency(Predicate("r", 2), (1,))
        assert not instance.satisfies_key(key)

    def test_key_satisfaction(self):
        instance = database_from_tuples([("r", ("k1", "x")), ("r", ("k2", "x"))])
        key = KeyDependency(Predicate("r", 2), (1,))
        assert instance.satisfies_key(key)
        assert instance.satisfies_keys([key])

    def test_composite_key(self):
        instance = database_from_tuples(
            [("s", ("k", "1", "x")), ("s", ("k", "2", "x")), ("s", ("m", "1", "y"))]
        )
        # No two tuples agree on positions {1, 2}, but the first two agree on
        # positions {1, 3}.
        assert instance.satisfies_key(KeyDependency(Predicate("s", 3), (1, 2)))
        assert not instance.satisfies_key(KeyDependency(Predicate("s", 3), (1, 3)))

    def test_empty_relation_trivially_satisfies_keys(self):
        assert RelationalInstance().satisfies_key(KeyDependency(Predicate("r", 2), (1,)))


class TestRemoval:
    def test_remove_deletes_and_bumps_epoch(self):
        instance = RelationalInstance()
        fact = Atom.of("r", a, b)
        instance.add(fact)
        epoch = instance.epoch
        assert instance.remove(fact)
        assert fact not in instance
        assert len(instance) == 0
        assert instance.epoch == epoch + 1

    def test_removing_an_absent_fact_is_a_noop(self):
        instance = RelationalInstance()
        epoch = instance.epoch
        assert not instance.remove(Atom.of("r", a, b))
        assert instance.epoch == epoch

    def test_remove_updates_the_position_indexes(self):
        instance = RelationalInstance()
        keep, drop = Atom.of("r", a, b), Atom.of("r", a, c)
        instance.add(keep)
        instance.add(drop)
        instance.remove(drop)
        assert instance.matching(Predicate("r", 2), {1: a}) == frozenset({keep})
        assert instance.matching(Predicate("r", 2), {2: c}) == frozenset()

    def test_remove_tuple_wraps_python_values(self):
        instance = RelationalInstance()
        instance.add_tuple("stock", ("s1", 12))
        assert instance.remove_tuple("stock", ("s1", 12))
        assert len(instance) == 0


class TestChangeLog:
    def test_delta_replays_the_mutations_in_order(self):
        instance = RelationalInstance()
        instance.add(Atom.of("r", a))
        epoch = instance.epoch
        instance.add(Atom.of("r", b))
        instance.remove(Atom.of("r", a))
        assert instance.changes_since(epoch) == [
            (True, Atom.of("r", b)),
            (False, Atom.of("r", a)),
        ]

    def test_current_epoch_yields_an_empty_delta(self):
        instance = RelationalInstance()
        instance.add(Atom.of("r", a))
        assert instance.changes_since(instance.epoch) == []

    def test_future_epoch_is_unavailable(self):
        instance = RelationalInstance()
        assert instance.changes_since(instance.epoch + 1) is None

    def test_noop_mutations_do_not_pollute_the_log(self):
        instance = RelationalInstance()
        instance.add(Atom.of("r", a))
        epoch = instance.epoch
        instance.add(Atom.of("r", a))  # duplicate insert
        instance.remove(Atom.of("r", b))  # absent removal
        assert instance.changes_since(epoch) == []

    def test_overflowed_log_reports_unavailable(self, monkeypatch):
        monkeypatch.setattr(RelationalInstance, "MAX_TRACKED_CHANGES", 3)
        instance = RelationalInstance()
        instance.add(Atom.of("r", a))
        epoch = instance.epoch
        for index in range(4):
            instance.add_tuple("r", (f"v{index}",))
        assert instance.changes_since(epoch) is None
        # The most recent window is still replayable.
        recent = instance.changes_since(instance.epoch - 3)
        assert recent is not None and len(recent) == 3

    def test_log_capacity_is_a_constructor_parameter(self):
        instance = RelationalInstance(max_tracked_changes=2)
        assert instance.max_tracked_changes == 2
        instance.add(Atom.of("r", a))
        epoch = instance.epoch
        instance.add(Atom.of("r", b))
        instance.add(Atom.of("r", c))
        assert instance.changes_since(epoch) == [
            (True, Atom.of("r", b)),
            (True, Atom.of("r", c)),
        ]
        instance.add_tuple("r", ("d",))
        assert instance.changes_since(epoch) is None

    def test_default_capacity_is_the_class_attribute(self):
        assert RelationalInstance().max_tracked_changes == (
            RelationalInstance.MAX_TRACKED_CHANGES
        )

    def test_negative_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            RelationalInstance(max_tracked_changes=-1)

    def test_truncation_boundary_is_exact(self):
        # Regression: the oldest epoch whose delta is still replayable is
        # exactly `epoch - capacity`; one step earlier must report None,
        # never a silently short delta.
        instance = RelationalInstance(max_tracked_changes=3)
        for index in range(6):
            instance.add_tuple("r", (f"v{index}",))
        floor = instance.epoch - 3
        at_floor = instance.changes_since(floor)
        assert at_floor is not None and len(at_floor) == 3
        assert instance.changes_since(floor - 1) is None
        # And the current epoch is always an empty (non-None) delta.
        assert instance.changes_since(instance.epoch) == []

    def test_zero_capacity_keeps_no_log(self):
        instance = RelationalInstance(max_tracked_changes=0)
        instance.add(Atom.of("r", a))
        epoch = instance.epoch
        instance.add(Atom.of("r", b))
        assert instance.changes_since(epoch) is None
        assert instance.changes_since(instance.epoch) == []
