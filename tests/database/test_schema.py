"""Tests for relational schemas."""

import pytest

from repro.database.schema import Relation, RelationalSchema
from repro.logic.atoms import Position, Predicate


class TestRelation:
    def test_attribute_names_must_match_arity(self):
        with pytest.raises(ValueError):
            Relation(Predicate("stock", 3), ("id", "name"))

    def test_default_attribute_names(self):
        relation = Relation(Predicate("stock", 3))
        assert relation.attributes == ("arg1", "arg2", "arg3")

    def test_attribute_of_is_one_based(self):
        relation = Relation(Predicate("stock", 3), ("id", "name", "unit_price"))
        assert relation.attribute_of(1) == "id"
        assert relation.attribute_of(3) == "unit_price"

    def test_name_and_arity(self):
        relation = Relation(Predicate("stock", 3))
        assert relation.name == "stock"
        assert relation.arity == 3


class TestRelationalSchema:
    def test_from_spec(self):
        schema = RelationalSchema.from_spec({"stock": ["id", "name", "price"], "fin_ins": ["id"]})
        assert "stock" in schema
        assert schema["stock"].arity == 3
        assert len(schema) == 2

    def test_redeclaration_with_same_arity_is_a_no_op(self):
        schema = RelationalSchema()
        schema.add(Relation(Predicate("r", 2), ("a", "b")))
        schema.add(Relation(Predicate("r", 2)))
        assert schema["r"].attributes == ("a", "b")

    def test_redeclaration_with_different_arity_is_rejected(self):
        schema = RelationalSchema()
        schema.add_predicate(Predicate("r", 2))
        with pytest.raises(ValueError):
            schema.add_predicate(Predicate("r", 3))

    def test_get_returns_none_for_unknown_relation(self):
        assert RelationalSchema().get("missing") is None

    def test_predicates_and_positions(self):
        schema = RelationalSchema.from_spec({"r": ["a", "b"]})
        assert schema.predicates() == {Predicate("r", 2)}
        assert Position(Predicate("r", 2), 2) in schema.positions()

    def test_iteration(self):
        schema = RelationalSchema.from_spec({"r": ["a"], "s": ["b"]})
        assert {relation.name for relation in schema} == {"r", "s"}
