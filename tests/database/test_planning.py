"""Cost-aware planning: estimates, join order, disjunct order, explain."""

from repro.api import OBDASystem
from repro.database.evaluator import QueryEvaluator, evaluate
from repro.database.instance import RelationalInstance, database_from_tuples
from repro.database.planning import CardinalityEstimator, JoinPlan
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.stock_exchange_example import (
    running_query,
    sample_database,
    theory,
)

A, B, C = Variable("A"), Variable("B"), Variable("C")


def _skewed_database() -> RelationalInstance:
    """``big`` has 6 rows over 3 distinct subjects; ``tiny`` has one row."""
    return database_from_tuples(
        [
            ("big", ("s1", "o1")),
            ("big", ("s1", "o2")),
            ("big", ("s2", "o1")),
            ("big", ("s2", "o3")),
            ("big", ("s3", "o2")),
            ("big", ("s3", "o4")),
            ("tiny", ("s2",)),
        ]
    )


class TestEstimates:
    def test_unbound_atom_estimates_the_relation_size(self):
        estimator = CardinalityEstimator(_skewed_database())
        assert estimator.estimate_rows(Atom.of("big", A, B), set()) == 6.0

    def test_bound_position_divides_by_distinct_count(self):
        estimator = CardinalityEstimator(_skewed_database())
        # 6 rows / 3 distinct subjects.
        assert estimator.estimate_rows(Atom.of("big", A, B), {A}) == 2.0
        constant = Atom.of("big", Constant("s1"), B)
        assert estimator.estimate_rows(constant, set()) == 2.0

    def test_empty_relation_estimates_zero(self):
        estimator = CardinalityEstimator(_skewed_database())
        assert estimator.estimate_rows(Atom.of("ghost", A), set()) == 0.0

    def test_statistics_follow_the_epoch(self):
        database = _skewed_database()
        estimator = CardinalityEstimator(database)
        assert estimator.estimate_rows(Atom.of("tiny", A), set()) == 1.0
        database.add(Atom.of("tiny", Constant("s9")))
        assert estimator.estimate_rows(Atom.of("tiny", A), set()) == 2.0


class TestJoinOrder:
    def test_selective_atom_joins_first(self):
        plan = CardinalityEstimator(_skewed_database()).plan_body(
            [Atom.of("big", A, B), Atom.of("tiny", A)]
        )
        assert plan.order[0].predicate.name == "tiny"
        # After binding A, big is filtered to 6/3 = 2 expected rows.
        assert plan.step_rows == (1.0, 2.0)
        assert plan.cumulative_rows == (1.0, 2.0)
        assert plan.cost == 3.0

    def test_empty_body_plans_to_nothing(self):
        plan = CardinalityEstimator(_skewed_database()).plan_body([])
        assert plan == JoinPlan((), (), (), 0.0)

    def test_plan_is_deterministic_under_ties(self):
        database = database_from_tuples(
            [("r", ("a", "b")), ("s", ("a", "b"))]
        )
        body = [Atom.of("s", A, B), Atom.of("r", A, B)]
        estimator = CardinalityEstimator(database)
        first = estimator.plan_body(body)
        assert first == estimator.plan_body(body)
        # Equal cost estimates fall back to the original body position.
        assert [atom.predicate.name for atom in first.order] == ["s", "r"]

    def test_evaluator_join_order_is_the_planned_order(self):
        database = _skewed_database()
        body = (Atom.of("big", A, B), Atom.of("tiny", A))
        planned = CardinalityEstimator(database).plan_body(body).order
        assert tuple(QueryEvaluator(database).join_order(body)) == planned

    def test_ordering_never_changes_answers(self):
        database = _skewed_database()
        query = ConjunctiveQuery(
            [Atom.of("big", A, B), Atom.of("tiny", A)], (A, B)
        )
        assert evaluate(query, database) == {
            (Constant("s2"), Constant("o1")),
            (Constant("s2"), Constant("o3")),
        }


class TestDisjunctOrder:
    def test_cheapest_disjunct_runs_first(self):
        estimator = CardinalityEstimator(_skewed_database())
        bodies = [
            [Atom.of("big", A, B), Atom.of("big", B, C)],
            [Atom.of("tiny", A)],
        ]
        order, plans = estimator.order_disjuncts(bodies)
        assert order == (1, 0)
        # Plans stay indexed by the original disjunct position.
        assert plans[1].order[0].predicate.name == "tiny"
        assert plans[0].cost > plans[1].cost

    def test_equal_costs_keep_original_order(self):
        estimator = CardinalityEstimator(_skewed_database())
        bodies = [[Atom.of("tiny", A)], [Atom.of("tiny", B)]]
        order, _ = estimator.order_disjuncts(bodies)
        assert order == (0, 1)


class TestExplain:
    def _prepared(self, backend):
        system = OBDASystem(
            theory(), database=sample_database(), backend=backend
        )
        return system.prepare(running_query())

    def test_memory_explain_reports_costs_and_order(self):
        text = self._prepared("memory").explain()
        assert "backend: memory" in text
        assert "disjunct order" in text
        assert "cost ~" in text
        assert "matching rows" in text

    def test_sqlite_explain_reports_costs_and_sql(self):
        text = self._prepared("sqlite").explain()
        assert "backend: sqlite" in text
        assert "disjunct order" in text
        assert "sql:" in text

    def test_explain_reflects_database_growth(self):
        system = OBDASystem(theory(), database=sample_database())
        prepared = system.prepare(running_query())
        before = prepared.explain()
        # Skew a relation the plan actually scans so the estimates move.
        for index in range(8):
            system.database.add(
                Atom.of(
                    "stock_portf",
                    Constant(f"comp{index}"),
                    Constant("stk"),
                    Constant("qty"),
                )
            )
        after = prepared.explain()
        assert before != after
