"""Tests for CQ / UCQ evaluation over relational instances."""

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.database.evaluator import QueryEvaluator, evaluate, evaluate_ucq
from repro.database.instance import RelationalInstance, database_from_tuples
from repro.logic.atoms import Atom
from repro.logic.homomorphism import has_homomorphism
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

from ..conftest import boolean_queries, ground_atoms

A, B, C = Variable("A"), Variable("B"), Variable("C")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def _sample_database() -> RelationalInstance:
    return database_from_tuples(
        [
            ("works_for", ("ann", "acme")),
            ("works_for", ("bob", "acme")),
            ("works_for", ("eve", "initech")),
            ("company", ("acme",)),
            ("manager", ("ann", "bob")),
        ]
    )


class TestSingleQueryEvaluation:
    def test_single_atom_query(self):
        answers = evaluate(
            ConjunctiveQuery([Atom.of("works_for", A, B)], (A,)), _sample_database()
        )
        assert answers == {(Constant("ann"),), (Constant("bob"),), (Constant("eve"),)}

    def test_join_query(self):
        query = ConjunctiveQuery(
            [Atom.of("works_for", A, B), Atom.of("company", B)], (A, B)
        )
        answers = evaluate(query, _sample_database())
        assert answers == {
            (Constant("ann"), Constant("acme")),
            (Constant("bob"), Constant("acme")),
        }

    def test_constant_selection(self):
        query = ConjunctiveQuery([Atom.of("works_for", A, Constant("initech"))], (A,))
        assert evaluate(query, _sample_database()) == {(Constant("eve"),)}

    def test_triangle_join(self):
        query = ConjunctiveQuery(
            [
                Atom.of("manager", A, B),
                Atom.of("works_for", A, C),
                Atom.of("works_for", B, C),
            ],
            (A, B, C),
        )
        answers = evaluate(query, _sample_database())
        assert answers == {(Constant("ann"), Constant("bob"), Constant("acme"))}

    def test_no_answers(self):
        query = ConjunctiveQuery([Atom.of("works_for", A, Constant("ghost"))], (A,))
        assert evaluate(query, _sample_database()) == frozenset()

    def test_boolean_query_entailment(self):
        evaluator = QueryEvaluator(_sample_database())
        assert evaluator.entails(ConjunctiveQuery([Atom.of("company", A)], ()))
        assert not evaluator.entails(ConjunctiveQuery([Atom.of("person", A)], ()))

    def test_repeated_variable_in_atom(self):
        database = database_from_tuples([("e", ("x", "x")), ("e", ("x", "y"))])
        query = ConjunctiveQuery([Atom.of("e", A, A)], (A,))
        assert evaluate(query, database) == {(Constant("x"),)}

    def test_answer_constants_are_projected(self):
        query = ConjunctiveQuery([Atom.of("company", A)], (A, Constant("fixed")))
        assert evaluate(query, _sample_database()) == {(Constant("acme"), Constant("fixed"))}


class TestUCQEvaluation:
    def test_union_of_answers(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("works_for", A, Constant("acme"))], (A,)),
                ConjunctiveQuery([Atom.of("works_for", A, Constant("initech"))], (A,)),
            ]
        )
        answers = evaluate_ucq(ucq, _sample_database())
        assert len(answers) == 3

    def test_entails_ucq(self):
        evaluator = QueryEvaluator(_sample_database())
        ucq = [
            ConjunctiveQuery([Atom.of("person", A)], ()),
            ConjunctiveQuery([Atom.of("company", A)], ()),
        ]
        assert evaluator.entails_ucq(ucq)
        assert not evaluator.entails_ucq(ucq[:1])

    def test_empty_ucq_has_no_answers(self):
        assert evaluate_ucq([], _sample_database()) == frozenset()


class TestEvaluatorAgainstHomomorphismOracle:
    """The evaluator must agree with the naive homomorphism-based semantics."""

    @settings(max_examples=40, deadline=None)
    @given(boolean_queries(max_atoms=3), st.lists(ground_atoms(), min_size=0, max_size=8))
    def test_boolean_evaluation_matches_homomorphism_check(self, query, facts):
        instance = RelationalInstance()
        for fact in facts:
            instance.add(fact)
        expected = has_homomorphism(query.body, instance.facts)
        assert QueryEvaluator(instance).entails(query) == expected
