"""Tests for SQL generation from CQs and UCQs."""

import pytest

from repro.database.schema import RelationalSchema
from repro.database.sql import (
    cq_to_sql,
    ucq_to_parameterized_sql,
    ucq_to_sql,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

A, B, C = Variable("A"), Variable("B"), Variable("C")

SCHEMA = RelationalSchema.from_spec(
    {
        "stock": ["id", "name", "unit_price"],
        "list_comp": ["stock", "list"],
    }
)


class TestCQToSQL:
    def test_single_atom_query(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)), SCHEMA)
        assert sql.startswith("SELECT DISTINCT t0.id AS a1 FROM stock AS t0")

    def test_join_condition_is_emitted(self):
        query = ConjunctiveQuery(
            [Atom.of("stock", A, B, C), Atom.of("list_comp", A, Variable("L"))], (A,)
        )
        sql = cq_to_sql(query, SCHEMA)
        assert "t0.id = t1.stock" in sql
        assert "FROM stock AS t0, list_comp AS t1" in sql

    def test_constant_selection_is_emitted(self):
        query = ConjunctiveQuery([Atom.of("list_comp", A, Constant("nasdaq"))], (A,))
        sql = cq_to_sql(query, SCHEMA)
        assert "t0.list = 'nasdaq'" in sql

    def test_numeric_constants_are_not_quoted(self):
        query = ConjunctiveQuery([Atom.of("stock", A, B, Constant(42))], (A,))
        assert "t0.unit_price = 42" in cq_to_sql(query, SCHEMA)

    def test_quotes_are_escaped(self):
        query = ConjunctiveQuery([Atom.of("list_comp", A, Constant("o'hare"))], (A,))
        assert "'o''hare'" in cq_to_sql(query, SCHEMA)

    def test_boolean_query_selects_a_constant(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], ()), SCHEMA)
        assert "SELECT DISTINCT 1 AS answer" in sql

    def test_missing_schema_falls_back_to_positional_names(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("unknown", A, B)], (A,)))
        assert "t0.arg1" in sql

    def test_answer_names_can_be_customised(self):
        sql = cq_to_sql(
            ConjunctiveQuery([Atom.of("stock", A, B, C)], (A, B)),
            SCHEMA,
            answer_names=["stock_id", "stock_name"],
        )
        assert "AS stock_id" in sql and "AS stock_name" in sql

    def test_wrong_number_of_answer_names_is_rejected(self):
        with pytest.raises(ValueError):
            cq_to_sql(
                ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)),
                SCHEMA,
                answer_names=["x", "y"],
            )

    def test_empty_body_is_rejected(self):
        with pytest.raises(ValueError):
            cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], ()).with_body([]), SCHEMA)

    def test_constant_answer_term(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], (Constant("x"),)), SCHEMA)
        assert "'x' AS a1" in sql


class TestUCQToSQL:
    def test_union_of_blocks(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)),
                ConjunctiveQuery([Atom.of("list_comp", A, B)], (A,)),
            ]
        )
        sql = ucq_to_sql(ucq, SCHEMA)
        assert sql.count("SELECT DISTINCT") == 2
        assert "\nUNION\n" in sql

    def test_empty_ucq_is_rejected(self):
        with pytest.raises(ValueError):
            ucq_to_sql([], SCHEMA)

    def test_single_disjunct_has_no_union(self):
        ucq = UnionOfConjunctiveQueries(
            [ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,))]
        )
        assert "UNION" not in ucq_to_sql(ucq, SCHEMA)

    def test_identical_disjunct_sql_is_deduplicated(self):
        # Variants differ only in variable names, so they render to the
        # same block; set semantics needs it only once.
        D, E, F = Variable("D"), Variable("E"), Variable("F")
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)),
                ConjunctiveQuery([Atom.of("stock", D, E, F)], (D,)),
            ]
        )
        sql = ucq_to_sql(ucq, SCHEMA)
        assert sql.count("SELECT DISTINCT") == 1
        assert "UNION" not in sql

    def test_disjuncts_differing_in_constants_are_kept(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("list_comp", A, Constant("nasdaq"))], (A,)),
                ConjunctiveQuery([Atom.of("list_comp", A, Constant("nyse"))], (A,)),
            ]
        )
        sql = ucq_to_sql(ucq, SCHEMA)
        assert sql.count("SELECT DISTINCT") == 2
        assert "\nUNION\n" in sql


class TestLiteralsAndIdentifiers:
    def test_boolean_constants_are_rendered_numerically(self):
        query = ConjunctiveQuery([Atom.of("stock", A, B, Constant(True))], (A,))
        assert "t0.unit_price = 1" in cq_to_sql(query, SCHEMA)
        query = ConjunctiveQuery([Atom.of("stock", A, B, Constant(False))], (A,))
        assert "t0.unit_price = 0" in cq_to_sql(query, SCHEMA)

    def test_none_selection_uses_is_null(self):
        # `col = NULL` is never true under SQL three-valued logic.
        query = ConjunctiveQuery([Atom.of("stock", A, B, Constant(None))], (A,))
        sql = cq_to_sql(query, SCHEMA)
        assert "t0.unit_price IS NULL" in sql
        assert "= NULL" not in sql

    def test_none_answer_term_renders_as_null(self):
        query = ConjunctiveQuery([Atom.of("stock", A, B, C)], (Constant(None),))
        assert "NULL AS a1" in cq_to_sql(query, SCHEMA)

    def test_multiple_quotes_are_each_escaped(self):
        query = ConjunctiveQuery(
            [Atom.of("list_comp", A, Constant("a'b'c"))], (A,)
        )
        assert "'a''b''c'" in cq_to_sql(query, SCHEMA)

    def test_non_identifier_relation_names_are_quoted(self):
        query = ConjunctiveQuery([Atom.of("ex:Stock-Item", A)], (A,))
        sql = cq_to_sql(query)
        assert '"ex:Stock-Item" AS t0' in sql

    def test_reserved_word_relation_names_are_quoted(self):
        query = ConjunctiveQuery([Atom.of("order", A)], (A,))
        assert '"order" AS t0' in cq_to_sql(query)


class TestParameterizedSQL:
    def test_constants_become_placeholders_in_order(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery(
                    [Atom.of("list_comp", A, Constant("nasdaq"))], (A,)
                ),
                ConjunctiveQuery(
                    [Atom.of("stock", A, Constant("acme"), Constant(12))], (A,)
                ),
            ]
        )
        statement = ucq_to_parameterized_sql(ucq, SCHEMA)
        assert statement.sql.count("?") == 3
        assert statement.parameters == (
            Constant("nasdaq"),
            Constant("acme"),
            Constant(12),
        )

    def test_blocks_identical_up_to_constants_survive_dedup(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("list_comp", A, Constant("x"))], (A,)),
                ConjunctiveQuery([Atom.of("list_comp", A, Constant("y"))], (A,)),
            ]
        )
        statement = ucq_to_parameterized_sql(ucq, SCHEMA)
        assert statement.sql.count("SELECT DISTINCT") == 2
        assert statement.parameters == (Constant("x"), Constant("y"))

    def test_truly_identical_blocks_are_deduplicated(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("list_comp", A, Constant("x"))], (A,)),
                ConjunctiveQuery([Atom.of("list_comp", B, Constant("x"))], (B,)),
            ]
        )
        statement = ucq_to_parameterized_sql(ucq, SCHEMA)
        assert statement.sql.count("SELECT DISTINCT") == 1
        assert statement.parameters == (Constant("x"),)

    def test_constant_answer_terms_are_parameterized(self):
        ucq = UnionOfConjunctiveQueries(
            [ConjunctiveQuery([Atom.of("stock", A, B, C)], (Constant("fixed"),))]
        )
        statement = ucq_to_parameterized_sql(ucq, SCHEMA)
        assert "? AS a1" in statement.sql
        assert statement.parameters == (Constant("fixed"),)

    def test_empty_ucq_is_rejected(self):
        with pytest.raises(ValueError):
            ucq_to_parameterized_sql([], SCHEMA)
