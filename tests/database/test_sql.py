"""Tests for SQL generation from CQs and UCQs."""

import pytest

from repro.database.schema import RelationalSchema
from repro.database.sql import cq_to_sql, ucq_to_sql
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

A, B, C = Variable("A"), Variable("B"), Variable("C")

SCHEMA = RelationalSchema.from_spec(
    {
        "stock": ["id", "name", "unit_price"],
        "list_comp": ["stock", "list"],
    }
)


class TestCQToSQL:
    def test_single_atom_query(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)), SCHEMA)
        assert sql.startswith("SELECT DISTINCT t0.id AS a1 FROM stock AS t0")

    def test_join_condition_is_emitted(self):
        query = ConjunctiveQuery(
            [Atom.of("stock", A, B, C), Atom.of("list_comp", A, Variable("L"))], (A,)
        )
        sql = cq_to_sql(query, SCHEMA)
        assert "t0.id = t1.stock" in sql
        assert "FROM stock AS t0, list_comp AS t1" in sql

    def test_constant_selection_is_emitted(self):
        query = ConjunctiveQuery([Atom.of("list_comp", A, Constant("nasdaq"))], (A,))
        sql = cq_to_sql(query, SCHEMA)
        assert "t0.list = 'nasdaq'" in sql

    def test_numeric_constants_are_not_quoted(self):
        query = ConjunctiveQuery([Atom.of("stock", A, B, Constant(42))], (A,))
        assert "t0.unit_price = 42" in cq_to_sql(query, SCHEMA)

    def test_quotes_are_escaped(self):
        query = ConjunctiveQuery([Atom.of("list_comp", A, Constant("o'hare"))], (A,))
        assert "'o''hare'" in cq_to_sql(query, SCHEMA)

    def test_boolean_query_selects_a_constant(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], ()), SCHEMA)
        assert "SELECT DISTINCT 1 AS answer" in sql

    def test_missing_schema_falls_back_to_positional_names(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("unknown", A, B)], (A,)))
        assert "t0.arg1" in sql

    def test_answer_names_can_be_customised(self):
        sql = cq_to_sql(
            ConjunctiveQuery([Atom.of("stock", A, B, C)], (A, B)),
            SCHEMA,
            answer_names=["stock_id", "stock_name"],
        )
        assert "AS stock_id" in sql and "AS stock_name" in sql

    def test_wrong_number_of_answer_names_is_rejected(self):
        with pytest.raises(ValueError):
            cq_to_sql(
                ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)),
                SCHEMA,
                answer_names=["x", "y"],
            )

    def test_empty_body_is_rejected(self):
        with pytest.raises(ValueError):
            cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], ()).with_body([]), SCHEMA)

    def test_constant_answer_term(self):
        sql = cq_to_sql(ConjunctiveQuery([Atom.of("stock", A, B, C)], (Constant("x"),)), SCHEMA)
        assert "'x' AS a1" in sql


class TestUCQToSQL:
    def test_union_of_blocks(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("stock", A, B, C)], (A,)),
                ConjunctiveQuery([Atom.of("list_comp", A, B)], (A,)),
            ]
        )
        sql = ucq_to_sql(ucq, SCHEMA)
        assert sql.count("SELECT DISTINCT") == 2
        assert "\nUNION\n" in sql

    def test_empty_ucq_is_rejected(self):
        with pytest.raises(ValueError):
            ucq_to_sql([], SCHEMA)
