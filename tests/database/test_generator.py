"""Tests for the synthetic ABox generator."""

from repro.database.generator import DatabaseGenerator, random_database
from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Variable
from repro.dependencies.tgd import tgd

X, Y = Variable("X"), Variable("Y")


class TestDatabaseGenerator:
    def test_generation_is_reproducible(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X, Y))]
        first = random_database(rules, seed=7)
        second = random_database(rules, seed=7)
        assert first.facts == second.facts

    def test_different_seeds_differ(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X, Y))]
        assert random_database(rules, seed=1).facts != random_database(rules, seed=2).facts

    def test_every_rule_predicate_is_populated(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X, Y))]
        instance = random_database(rules, facts_per_relation=5)
        assert len(instance.relation(Predicate("p", 1))) >= 1
        assert len(instance.relation(Predicate("q", 2))) >= 1

    def test_facts_per_relation_bounds_the_size(self):
        generator = DatabaseGenerator(seed=0)
        instance = generator.populate([Predicate("p", 1)], facts_per_relation=3)
        assert 1 <= len(instance) <= 3  # duplicates may collapse

    def test_random_fact_has_the_right_shape(self):
        generator = DatabaseGenerator(seed=0)
        fact = generator.random_fact(Predicate("r", 3))
        assert fact.arity == 3
        assert fact.is_fact()

    def test_domain_size_limits_constants(self):
        generator = DatabaseGenerator(seed=0, domain_size=2)
        instance = generator.populate([Predicate("p", 1)], facts_per_relation=20)
        assert len(instance.constants()) <= 2
