"""Tier-1 fuzzing gate: a bounded fixed-seed window through all oracles.

This is the in-suite twin of ``make fuzz-smoke`` — a couple of cases per
fragment, plus the registry ontologies at a small scale, so a rewriter
regression that breaks chase agreement, backend agreement or determinism
fails `make test` before any CI fuzz job runs.
"""

import pytest

from repro.fuzzing.generator import (
    FRAGMENTS,
    GeneratorConfig,
    WorkloadGenerator,
    registry_cases,
)
from repro.fuzzing.oracle import DifferentialOracle


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle()


@pytest.mark.parametrize("fragment", FRAGMENTS)
def test_fixed_seed_window_passes(oracle, fragment):
    config = GeneratorConfig(fragment=fragment)
    cases = WorkloadGenerator(seed=1, config=config).cases(2)
    for verdict in oracle.check_many(cases):
        assert verdict.ok, verdict.summary()


@pytest.mark.parametrize("workload", ["S", "U"])
def test_registry_ontologies_pass_at_small_scale(oracle, workload):
    for case in registry_cases(workload, scale=1, seed=0):
        verdict = oracle.check(case)
        assert verdict.ok, verdict.summary()
