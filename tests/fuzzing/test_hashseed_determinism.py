"""Generated theories must not depend on ``PYTHONHASHSEED``.

Hash randomisation changes set/dict iteration order between interpreter
runs; any generator (or fingerprint) code path iterating a set would
emit different rule orders per run while staying "deterministic" within
one process.  The only honest check crosses a process boundary: render
the same seeded cases in two subprocesses pinned to *different* hash
seeds and require byte-identical output.
"""

import os
import subprocess
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]

# Renders theory + query + facts + fingerprint for a few cases per
# fragment; any iteration-order leak shows up as a byte difference.
_RENDER = """
import sys
from repro.cache.fingerprint import theory_fingerprint
from repro.fuzzing.generator import (
    FRAGMENTS, GeneratorConfig, WorkloadGenerator, scaled_registry_instance,
)

for fragment in FRAGMENTS:
    generator = WorkloadGenerator(seed=7, config=GeneratorConfig(fragment=fragment))
    for case in generator.cases(3):
        for rule in case.theory.tgds:
            print(repr(rule))
        print(repr(case.query))
        for fact in sorted(case.instance.facts, key=repr):
            print(repr(fact))
        print(theory_fingerprint(list(case.theory.tgds)))
for fact in sorted(scaled_registry_instance("U", scale=2, seed=7).facts, key=repr):
    print(repr(fact))
"""


def _render(hash_seed: str) -> str:
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = hash_seed
    environment["PYTHONPATH"] = str(_REPO / "src")
    completed = subprocess.run(
        [sys.executable, "-c", _RENDER],
        capture_output=True,
        text=True,
        env=environment,
        cwd=_REPO,
        check=True,
    )
    return completed.stdout


def test_output_is_byte_identical_across_hash_seeds():
    first = _render("0")
    second = _render("1")
    assert first, "render subprocess produced no output"
    assert first == second
