"""The seeded workload generator: reproducibility, validity, scaling."""

import pytest

from repro.dependencies.classifiers import classify
from repro.fuzzing.generator import (
    FRAGMENT_CLASSIFIERS,
    FRAGMENTS,
    GeneratedCase,
    GeneratorConfig,
    WorkloadGenerator,
    registry_cases,
    scaled_registry_instance,
)
from repro.logic.terms import Variable


def _theory_repr(case: GeneratedCase) -> str:
    return "\n".join(repr(rule) for rule in case.theory.tgds)


class TestReproducibility:
    @pytest.mark.parametrize("fragment", FRAGMENTS)
    def test_same_seed_same_triple(self, fragment):
        config = GeneratorConfig(fragment=fragment)
        first = WorkloadGenerator(seed=11, config=config).case(3)
        second = WorkloadGenerator(seed=11, config=config).case(3)
        assert _theory_repr(first) == _theory_repr(second)
        assert repr(first.query) == repr(second.query)
        assert first.instance.facts == second.instance.facts

    def test_different_seeds_differ(self):
        first = WorkloadGenerator(seed=1).case(0)
        second = WorkloadGenerator(seed=2).case(0)
        assert (
            _theory_repr(first) != _theory_repr(second)
            or repr(first.query) != repr(second.query)
            or first.instance.facts != second.instance.facts
        )

    def test_case_is_pure_function_of_index(self):
        generator = WorkloadGenerator(seed=5)
        stream = [generator.case(i) for i in range(4)]
        # Regenerating a single index (out of order) gives the same case.
        assert _theory_repr(generator.case(2)) == _theory_repr(stream[2])

    def test_fragments_do_not_share_streams(self):
        linear = WorkloadGenerator(seed=9, config=GeneratorConfig()).case(0)
        sticky = WorkloadGenerator(
            seed=9, config=GeneratorConfig(fragment="sticky")
        ).case(0)
        assert _theory_repr(linear) != _theory_repr(sticky)

    def test_cases_returns_count(self):
        assert len(WorkloadGenerator(seed=0).cases(5)) == 5


class TestFragmentValidity:
    @pytest.mark.parametrize("fragment", FRAGMENTS)
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_emitted_theory_passes_its_classifier(self, fragment, seed):
        config = GeneratorConfig(fragment=fragment)
        classifier = FRAGMENT_CLASSIFIERS[fragment]
        for case in WorkloadGenerator(seed=seed, config=config).cases(5):
            assert classifier(list(case.theory.tgds)), case.describe()

    @pytest.mark.parametrize("fragment", FRAGMENTS)
    def test_emitted_theory_is_fo_rewritable_per_classification(self, fragment):
        case = WorkloadGenerator(
            seed=3, config=GeneratorConfig(fragment=fragment)
        ).case(0)
        assert classify(list(case.theory.tgds)).fo_rewritable

    def test_normal_form_single_head_single_existential(self):
        for fragment in FRAGMENTS:
            config = GeneratorConfig(fragment=fragment, existential_density=1.0)
            for case in WorkloadGenerator(seed=1, config=config).cases(3):
                for rule in case.theory.tgds:
                    assert len(rule.head) == 1
                    body_variables = set()
                    for atom in rule.body:
                        body_variables.update(atom.variables())
                    existentials = [
                        term
                        for term in rule.head[0].terms
                        if isinstance(term, Variable)
                        and term not in body_variables
                    ]
                    assert len(existentials) <= 1

    def test_stratified_rules_descend_the_predicate_order(self):
        config = GeneratorConfig(fragment="sticky")
        for case in WorkloadGenerator(seed=13, config=config).cases(3):
            for rule in case.theory.tgds:
                head_index = int(rule.head[0].predicate.name[1:])
                for atom in rule.body:
                    assert int(atom.predicate.name[1:]) < head_index


class TestConfigValidation:
    def test_unknown_fragment_rejected(self):
        with pytest.raises(ValueError, match="fragment"):
            GeneratorConfig(fragment="weakly-acyclic")

    @pytest.mark.parametrize(
        "field", ["predicates", "max_arity", "rules", "fan_out", "query_atoms",
                  "facts_per_relation", "domain_size"]
    )
    def test_nonpositive_axes_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            GeneratorConfig(**{field: 0})

    def test_density_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="existential_density"):
            GeneratorConfig(existential_density=1.5)

    def test_nonlinear_needs_two_predicates(self):
        with pytest.raises(ValueError, match="stratified"):
            GeneratorConfig(fragment="sticky", predicates=1)
        GeneratorConfig(fragment="linear", predicates=1)  # fine


class TestScaledRegistry:
    def test_scaled_instance_grows_with_scale(self):
        small = scaled_registry_instance("U", scale=1, seed=0)
        large = scaled_registry_instance("U", scale=10, seed=0)
        assert len(large) > 2 * len(small)

    def test_scaled_instance_keeps_the_sample_abox(self):
        from repro.workloads import get_workload

        sample = get_workload("U").abox(seed=0)
        scaled = scaled_registry_instance("U", scale=5, seed=0)
        assert sample.facts <= scaled.facts

    def test_scaled_instance_is_deterministic(self):
        first = scaled_registry_instance("U", scale=3, seed=4)
        second = scaled_registry_instance("U", scale=3, seed=4)
        assert first.facts == second.facts

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError, match="scale"):
            scaled_registry_instance("U", scale=0)

    def test_registry_cases_one_per_query(self):
        from repro.workloads import get_workload

        cases = registry_cases("U", scale=2, seed=0)
        workload = get_workload("U")
        assert len(cases) == len(workload.query_names)
        shared = cases[0].instance
        for case in cases:
            assert case.instance is shared
            assert case.theory is workload.theory
