"""Checkpoint/resume under fuzzed inputs.

The frontier checkpoint is exercised elsewhere on the registry
ontologies; here, 20 generated theories (mixed fragments) are killed at
a seeded-random generation and resumed, and the resumed rewriting must
be byte-identical (canonical serialised JSON) to an uninterrupted run.
"""

import json
import random

import pytest

from repro.cache.checkpoint import FrontierCheckpoint
from repro.cache.serialization import result_to_json
from repro.core.rewriter import TGDRewriter
from repro.fuzzing.generator import FRAGMENTS, GeneratorConfig, WorkloadGenerator
from repro.fuzzing.oracle import GenerationCountingStrategy
from tests.cache.test_checkpoint import KillingStrategy, SimulatedKill

#: How many generated theories the gate replays.
_THEORIES = 20

#: Case indices to scan for multi-generation rewritings (cases finishing
#: in one generation cannot be interrupted mid-run).
_MAX_INDEX = 80


def _canonical(result) -> str:
    return json.dumps(result_to_json(result), sort_keys=True)


def _interruptible_cases():
    """(case, clean result, generation count) for multi-generation cases."""
    found = []
    for index in range(_MAX_INDEX):
        fragment = FRAGMENTS[index % len(FRAGMENTS)]
        config = GeneratorConfig(fragment=fragment)
        case = WorkloadGenerator(seed=23, config=config).case(index)
        counting = GenerationCountingStrategy()
        clean = TGDRewriter(case.theory.tgds).rewrite(case.query, strategy=counting)
        if counting.generations >= 2:
            found.append((case, clean, counting.generations))
        if len(found) == _THEORIES:
            return found
    raise AssertionError(
        f"only {len(found)} multi-generation cases in {_MAX_INDEX} indices"
    )


@pytest.fixture(scope="module")
def interruptible_cases():
    return _interruptible_cases()


def test_kill_and_resume_is_byte_identical(tmp_path, interruptible_cases):
    assert len(interruptible_cases) == _THEORIES
    for number, (case, clean, generations) in enumerate(interruptible_cases):
        killed_after = random.Random(number).randint(1, generations - 1)
        path = tmp_path / f"frontier-{number}.json"

        with pytest.raises(SimulatedKill):
            TGDRewriter(case.theory.tgds).rewrite(
                case.query,
                strategy=KillingStrategy(killed_after),
                checkpoint=FrontierCheckpoint(path),
            )
        assert path.exists(), case.describe()

        resumed_checkpoint = FrontierCheckpoint(path)
        resumed = TGDRewriter(case.theory.tgds).rewrite(
            case.query, checkpoint=resumed_checkpoint
        )
        assert resumed_checkpoint.resumed_generation == killed_after, (
            case.describe()
        )
        assert _canonical(resumed) == _canonical(clean), (
            f"kill@{killed_after}: {case.describe()}"
        )
        assert not path.exists()  # completion cleans up
