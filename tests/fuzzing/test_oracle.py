"""The differential oracles: clean cases pass, planted bugs are caught."""

import pytest

from repro.fuzzing.generator import GeneratorConfig, WorkloadGenerator
from repro.fuzzing.oracle import (
    DifferentialOracle,
    answer_diff,
    format_answer_diff,
)
from repro.queries.ucq import UnionOfConjunctiveQueries


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle()


class TestCleanCases:
    @pytest.mark.parametrize("fragment", ["linear", "sticky", "sticky-join"])
    def test_generated_cases_pass_all_oracles(self, oracle, fragment):
        config = GeneratorConfig(fragment=fragment)
        for case in WorkloadGenerator(seed=0, config=config).cases(3):
            verdict = oracle.check(case)
            assert verdict.skipped is None, verdict.summary()
            assert verdict.ok, verdict.summary()

    def test_verdict_carries_measurements(self, oracle):
        verdict = oracle.check(WorkloadGenerator(seed=0).case(0))
        assert verdict.generations >= 1
        assert verdict.rewriting_size >= 1

    def test_failure_predicate_none_on_clean_case(self, oracle):
        assert oracle.failure(WorkloadGenerator(seed=0).case(0)) is None


class TestPlantedBug:
    def _mutator(self, ucq: UnionOfConjunctiveQueries):
        # Drop the last CQ of any multi-CQ rewriting: an unsound
        # rewriting that loses certain answers but stays deterministic.
        queries = list(ucq.queries)
        if len(queries) > 1:
            queries = queries[:-1]
        return UnionOfConjunctiveQueries(queries)

    def _failing_case(self, buggy):
        for index in range(20):
            case = WorkloadGenerator(seed=42).case(index)
            verdict = buggy.check(case)
            if not verdict.ok:
                return case, verdict
        pytest.fail("no generated case exposed the planted bug in 20 tries")

    def test_chase_oracle_catches_dropped_cq(self):
        buggy = DifferentialOracle(rewriting_mutator=self._mutator)
        case, verdict = self._failing_case(buggy)
        assert any(f.oracle == "chase" for f in verdict.failures), (
            verdict.summary()
        )
        # The mutation is uniform, so determinism must NOT fire: the bug
        # is in the rewriting, not in the scheduling.
        assert not any(f.oracle == "determinism" for f in verdict.failures)
        # And the clean oracle agrees the same case is fine.
        assert DifferentialOracle().check(case).ok

    def test_failure_predicate_reports_planted_bug(self):
        buggy = DifferentialOracle(rewriting_mutator=self._mutator)
        case, _ = self._failing_case(buggy)
        failure = buggy.failure(case)
        assert failure is not None and failure.oracle == "chase"


class TestOracleConfig:
    def test_needs_a_strategy_and_a_backend(self):
        with pytest.raises(ValueError, match="strategy"):
            DifferentialOracle(strategies=())
        with pytest.raises(ValueError, match="backend"):
            DifferentialOracle(backends=())

    def test_tiny_budget_skips_not_fails(self):
        tight = DifferentialOracle(max_queries=1)
        verdict = tight.check(WorkloadGenerator(seed=0).case(2))
        if verdict.skipped is not None:
            assert "budget" in verdict.skipped
            assert verdict.ok  # a skip is not a failure


class TestAnswerDiff:
    def test_diff_is_minimal_and_sorted(self):
        left = frozenset({("a",), ("b",), ("c",)})
        right = frozenset({("b",), ("d",)})
        only_left, only_right = answer_diff(left, right)
        assert only_left == [("a",), ("c",)]
        assert only_right == [("d",)]

    def test_format_shows_only_differences(self):
        left = frozenset({(i,) for i in range(100)})
        right = frozenset(left - {(7,)})
        text = format_answer_diff("memory", left, "sqlite", right)
        assert "only in memory: (7,)" in text
        assert "(8,)" not in text  # shared tuples never printed

    def test_format_truncates_long_diffs(self):
        left = frozenset({(i,) for i in range(50)})
        text = format_answer_diff("l", left, "r", frozenset(), limit=3)
        assert "(50 total)" in text

    def test_format_reports_agreement(self):
        same = frozenset({("x",)})
        assert "agree" in format_answer_diff("l", same, "r", same)
