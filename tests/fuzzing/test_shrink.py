"""The shrinker and the replayable repro files."""

import pytest

from repro.fuzzing.generator import WorkloadGenerator
from repro.fuzzing.oracle import DifferentialOracle
from repro.fuzzing.shrink import (
    REPRO_FORMAT,
    load_repro,
    shrink_case,
    write_repro,
)
from repro.queries.ucq import UnionOfConjunctiveQueries


def _drop_last_cq(ucq: UnionOfConjunctiveQueries):
    queries = list(ucq.queries)
    if len(queries) > 1:
        queries = queries[:-1]
    return UnionOfConjunctiveQueries(queries)


@pytest.fixture(scope="module")
def buggy_oracle():
    return DifferentialOracle(rewriting_mutator=_drop_last_cq)


@pytest.fixture(scope="module")
def failing_case(buggy_oracle):
    for index in range(20):
        case = WorkloadGenerator(seed=42).case(index)
        if buggy_oracle.failure(case) is not None:
            return case
    pytest.fail("no generated case exposed the planted bug in 20 tries")


class TestShrinking:
    def test_planted_bug_shrinks_small(self, buggy_oracle, failing_case):
        shrunk = shrink_case(failing_case, buggy_oracle.failure)
        # The acceptance bar is <= 10 rules; in practice the greedy
        # passes reach 1-2 rules on this mutator.
        assert len(shrunk.theory.tgds) <= 10
        assert len(shrunk.theory.tgds) < len(failing_case.theory.tgds)
        assert len(shrunk.instance) <= len(failing_case.instance)
        # The minimised case still reproduces the failure...
        assert buggy_oracle.failure(shrunk) is not None
        # ...and is still clean for a correct rewriter.
        assert DifferentialOracle().failure(shrunk) is None

    def test_shrink_reports_progress(self, buggy_oracle, failing_case):
        notes = []
        shrink_case(failing_case, buggy_oracle.failure, on_progress=notes.append)
        assert notes and all("shrunk to" in note for note in notes)

    def test_shrink_rejects_passing_case(self):
        clean = DifferentialOracle()
        case = WorkloadGenerator(seed=0).case(0)
        with pytest.raises(ValueError, match="failing"):
            shrink_case(case, clean.failure)


class TestReproFiles:
    def test_round_trip_preserves_the_case(self, tmp_path, failing_case):
        path = write_repro(tmp_path / "case.json", failing_case)
        loaded, recorded = load_repro(path)
        assert recorded is None
        assert loaded.seed == failing_case.seed
        assert loaded.config == failing_case.config
        assert [repr(r) for r in loaded.theory.tgds] == [
            repr(r) for r in failing_case.theory.tgds
        ]
        assert repr(loaded.query) == repr(failing_case.query)
        assert loaded.instance.facts == failing_case.instance.facts

    def test_reloaded_case_still_reproduces(
        self, tmp_path, buggy_oracle, failing_case
    ):
        shrunk = shrink_case(failing_case, buggy_oracle.failure)
        failure = buggy_oracle.failure(shrunk)
        path = write_repro(tmp_path / "shrunk.json", shrunk, failure)
        loaded, recorded = load_repro(path)
        assert recorded == {"oracle": failure.oracle, "detail": failure.detail}
        assert buggy_oracle.failure(loaded) is not None

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a fuzzing repro"):
            load_repro(path)

    def test_wrong_format_rejected(self, tmp_path, failing_case):
        import json

        path = write_repro(tmp_path / "case.json", failing_case)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format"] = REPRO_FORMAT + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="format"):
            load_repro(path)

    def test_string_failure_recorded(self, tmp_path, failing_case):
        path = write_repro(tmp_path / "case.json", failing_case, "boom")
        _, recorded = load_repro(path)
        assert recorded == {"oracle": None, "detail": "boom"}
