"""Mutation-sequence mode of the differential oracle.

``DifferentialOracle(mutation_steps=N)`` drives every generated case
through N seeded interleaved inserts/deletes and asserts the
delta-maintained answer set is byte-identical to full re-execution at
each step — over a normally tracked change log *and* a zero-capacity log
that forces the truncation fallback.  The acceptance bar for PR 9 is at
least 50 clean mutation sequences across the generator fragments.
"""

import pytest

from repro.fuzzing.generator import GeneratorConfig, WorkloadGenerator, registry_cases
from repro.fuzzing.oracle import DifferentialOracle
from repro.incremental import MaintainedAnswerSet


class TestMutationSequences:
    def test_fifty_generated_sequences_stay_byte_identical(self):
        oracle = DifferentialOracle(mutation_steps=6)
        sequences = 0
        for fragment in ("linear", "sticky", "sticky-join"):
            generator = WorkloadGenerator(
                seed=3, config=GeneratorConfig(fragment=fragment)
            )
            for case in generator.cases(20):
                verdict = oracle.check(case)
                if verdict.skipped is not None:
                    continue
                assert verdict.ok, verdict.summary()
                sequences += 1
        assert sequences >= 50, f"only {sequences} mutation sequences ran"

    def test_registry_workload_sequences_pass(self):
        oracle = DifferentialOracle(mutation_steps=6)
        for case in registry_cases("S", scale=1, seed=0):
            verdict = oracle.check(case)
            assert verdict.skipped is None, verdict.summary()
            assert verdict.ok, verdict.summary()

    def test_zero_steps_disables_the_maintenance_oracle(self, monkeypatch):
        oracle = DifferentialOracle(mutation_steps=0)

        def forbidden(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("maintenance oracle ran with mutation_steps=0")

        monkeypatch.setattr(oracle, "_maintenance_oracle", forbidden)
        verdict = oracle.check(WorkloadGenerator(seed=0).case(0))
        assert verdict.ok, verdict.summary()


class TestPlantedMaintenanceBug:
    class Corrupted(MaintainedAnswerSet):
        """Drops one maintained answer after every incremental step."""

        def _incremental_refresh(self, database, log):
            delta = super()._incremental_refresh(database, log)
            if self._support:
                victim = sorted(self._support, key=repr)[0]
                del self._support[victim]
            return delta

    def test_corrupted_maintenance_is_caught(self, monkeypatch):
        monkeypatch.setattr(
            "repro.fuzzing.oracle.MaintainedAnswerSet", self.Corrupted
        )
        oracle = DifferentialOracle(mutation_steps=8)
        for index in range(20):
            case = WorkloadGenerator(seed=5).case(index)
            verdict = oracle.check(case)
            if verdict.skipped is not None or verdict.ok:
                continue
            assert any(f.oracle == "maintenance" for f in verdict.failures), (
                verdict.summary()
            )
            return
        pytest.fail("no case exposed the planted maintenance bug in 20 tries")
