"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import TGD
from repro.queries.conjunctive_query import ConjunctiveQuery


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture()
def variables():
    """A small pool of named variables used across tests."""
    return {name: Variable(name) for name in "ABCDEXYZVW"}


@pytest.fixture()
def example2_rules():
    """The two TGDs of Example 2 (σ1: s(X) → ∃Z t(X,X,Z); σ2: t(X,Y,Z) → r(Y,Z))."""
    from repro.workloads.paper_examples import example2_rules as build

    return build()


@pytest.fixture()
def example6_rules():
    """The three TGDs of Example 6 / Figure 2."""
    from repro.workloads.paper_examples import example6_rules as build

    return build()


@pytest.fixture()
def stock_exchange_theory():
    """The running-example theory (σ1 … σ9 plus δ1)."""
    from repro.workloads import stock_exchange_example

    return stock_exchange_example.theory()


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: Small alphabet of variable names, so joins actually happen.
variable_names = st.sampled_from(["X", "Y", "Z", "U", "V", "W"])

#: Small alphabet of constants.
constant_values = st.sampled_from(["a", "b", "c", "d"])

#: Small alphabet of predicates with arities 1-3.
predicate_pool = st.sampled_from(
    [Predicate("p", 1), Predicate("q", 2), Predicate("r", 2), Predicate("s", 3)]
)


@st.composite
def terms(draw):
    """A random variable or constant."""
    if draw(st.booleans()):
        return Variable(draw(variable_names))
    return Constant(draw(constant_values))


@st.composite
def atoms(draw):
    """A random atom over the small predicate/term pools."""
    predicate = draw(predicate_pool)
    atom_terms = tuple(draw(terms()) for _ in range(predicate.arity))
    return Atom(predicate, atom_terms)


@st.composite
def ground_atoms(draw):
    """A random ground atom (constants only)."""
    predicate = draw(predicate_pool)
    atom_terms = tuple(Constant(draw(constant_values)) for _ in range(predicate.arity))
    return Atom(predicate, atom_terms)


@st.composite
def atom_sets(draw, min_size: int = 1, max_size: int = 4):
    """A small set of random atoms."""
    return draw(st.lists(atoms(), min_size=min_size, max_size=max_size))


@st.composite
def boolean_queries(draw, max_atoms: int = 4):
    """A random Boolean conjunctive query."""
    body = draw(st.lists(atoms(), min_size=1, max_size=max_atoms))
    return ConjunctiveQuery(body, ())


@st.composite
def linear_tgds(draw):
    """A random linear TGD over the small pools.

    The head reuses a subset of the body variables (the frontier) and may add
    one fresh existential variable.
    """
    body_predicate = draw(predicate_pool)
    body_terms = tuple(
        Variable(draw(variable_names)) for _ in range(body_predicate.arity)
    )
    body_atom = Atom(body_predicate, body_terms)

    head_predicate = draw(predicate_pool)
    head_terms = []
    for _ in range(head_predicate.arity):
        if body_terms and draw(st.booleans()):
            head_terms.append(draw(st.sampled_from(list(body_terms))))
        else:
            head_terms.append(Variable("E0"))
    head_atom = Atom(head_predicate, tuple(head_terms))
    return TGD((body_atom,), (head_atom,))


@st.composite
def linear_tgd_sets(draw, max_rules: int = 4):
    """A random set of linear TGDs."""
    return draw(st.lists(linear_tgds(), min_size=1, max_size=max_rules))
