"""The differential bar for PR 9: maintained answers ≡ full re-execution.

For every Table 1 workload the maintained answer set of a prepared query
must be **byte-identical** — through the serving tier's
:func:`~repro.serving.app.encode_answers` — to re-executing the full
rewriting from scratch, at *every* epoch of a seeded mutation sequence.
The sweep also covers the truncation fallback (a tiny change log) and a
persistent-store round trip (the maintained set of a store-served
rewriting matches the freshly computed one).
"""

import json
import random

import pytest

from repro.api import OBDASystem
from repro.database.evaluator import evaluate_ucq
from repro.database.instance import RelationalInstance
from repro.fuzzing.generator import registry_cases
from repro.logic.atoms import Atom
from repro.logic.terms import Constant
from repro.serving.app import encode_answers

WORKLOADS = ("V", "S", "U", "A", "P5")


def encoded(tuples):
    return json.dumps(encode_answers(tuples))


def drive(system, prepared, rng, steps):
    """Apply *steps* seeded mutations, asserting byte-identity each epoch."""
    database = system.database
    predicates = sorted(database.predicates(), key=lambda p: (p.name, p.arity))
    constants = sorted(database.constants(), key=repr) or [Constant("m0")]
    constants = list(constants) + [Constant(f"m{i}") for i in range(3)]
    previous = prepared.maintained_answers
    for _ in range(steps):
        facts = sorted(database.facts, key=repr)
        if facts and rng.random() < 0.4:
            database.remove(rng.choice(facts))
        else:
            predicate = rng.choice(predicates)
            terms = tuple(rng.choice(constants) for _ in range(predicate.arity))
            database.add(Atom.of(predicate.name, *terms))
        delta = prepared.poll()
        maintained = prepared.maintained_answers
        # The delta composes over the previous snapshot...
        assert (previous | delta.added) - delta.removed == maintained
        previous = maintained
        # ...and the maintained set is byte-identical to re-execution.
        expected = evaluate_ucq(prepared.rewriting.ucq, database)
        assert encoded(maintained) == encoded(expected)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_workload_maintenance_matches_full_reexecution(workload):
    for case in registry_cases(workload, scale=1, seed=0):
        database = RelationalInstance(facts=case.instance.facts)
        system = OBDASystem(case.theory, database=database)
        prepared = system.prepare(case.query)
        prepared.poll()
        drive(
            system,
            prepared,
            random.Random(hash(workload) % (2**32)),
            steps=12,
        )
        system.close()


@pytest.mark.parametrize("backend", ("memory", "sqlite"))
def test_backends_agree_on_maintained_answers(backend):
    case = registry_cases("S", scale=1, seed=0)[0]
    database = RelationalInstance(facts=case.instance.facts)
    system = OBDASystem(case.theory, database=database, backend=backend)
    prepared = system.prepare(case.query)
    prepared.poll()
    drive(system, prepared, random.Random(7), steps=10)
    system.close()


def test_truncated_log_workload_falls_back_and_stays_identical():
    case = registry_cases("U", scale=1, seed=0)[0]
    database = RelationalInstance(facts=case.instance.facts, max_tracked_changes=1)
    system = OBDASystem(case.theory, database=database)
    prepared = system.prepare(case.query)
    prepared.poll()
    maintainer = prepared.maintainer()
    rng = random.Random(11)
    predicates = sorted(database.predicates(), key=lambda p: (p.name, p.arity))
    # Batch two mutations per poll so the 1-entry log can never reach
    # back to the maintainer's epoch: every poll takes the fallback.
    for step in range(5):
        for offset in range(2):
            predicate = rng.choice(predicates)
            terms = tuple(
                Constant(f"t{step}-{offset}-{i}") for i in range(predicate.arity)
            )
            database.add(Atom.of(predicate.name, *terms))
        prepared.poll()
        assert encoded(prepared.maintained_answers) == encoded(
            evaluate_ucq(prepared.rewriting.ucq, database)
        )
    assert maintainer.counters.truncation_fallbacks == 5
    assert maintainer.counters.incremental_refreshes == 0
    system.close()


def test_store_round_trip_preserves_maintenance(tmp_path):
    case = registry_cases("V", scale=1, seed=0)[0]
    store = tmp_path / "rewritings.sqlite"

    fresh = OBDASystem(
        case.theory,
        database=RelationalInstance(facts=case.instance.facts),
        cache=store,
    )
    fresh.prepare(case.query)  # populate the persistent store
    fresh.close()

    served = OBDASystem(
        case.theory,
        database=RelationalInstance(facts=case.instance.facts),
        cache=store,
    )
    prepared = served.prepare(case.query)  # rewriting now comes from disk
    prepared.poll()
    drive(served, prepared, random.Random(13), steps=8)
    served.close()
