"""Unit tests for delta maintenance of UCQ answer sets.

Covers the building blocks (relevance index, overlay view, net-change
collapse, pinning, rederivation) and the :class:`MaintainedAnswerSet`
refresh modes: initial full computation, incremental insert/delete
maintenance with support counting, and every fallback (truncated log,
oversize delta, instance swap, noop).
"""

import pytest

from repro.database.evaluator import evaluate_ucq
from repro.database.instance import RelationalInstance
from repro.incremental import (
    MaintainedAnswerSet,
    OverlayInstance,
    RelevanceIndex,
    derives,
    net_changes,
    pinned_answers,
    unify_fact,
)
from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Constant, Variable

X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def cq(body, answer_terms):
    from repro.queries.conjunctive_query import ConjunctiveQuery

    return ConjunctiveQuery(body, answer_terms)


#: q(X) :- person(X)  ∪  q(X) :- employee(X)  — overlapping disjuncts so
#: support counting matters.
PERSON = cq([Atom.of("person", X)], (X,))
EMPLOYEE = cq([Atom.of("employee", X)], (X,))
#: join disjunct: q(X) :- works(X, Y), dept(Y)
WORKS_IN_DEPT = cq([Atom.of("works", X, Y), Atom.of("dept", Y)], (X,))


class TestRelevanceIndex:
    def test_routes_predicates_to_mentioning_disjuncts(self):
        index = RelevanceIndex((PERSON, EMPLOYEE, WORKS_IN_DEPT))
        assert index.disjunct_count == 3
        assert index.disjuncts_for(Predicate("person", 1)) == (0,)
        assert index.disjuncts_for(Predicate("employee", 1)) == (1,)
        assert index.disjuncts_for(Predicate("works", 2)) == (2,)
        assert index.disjuncts_for(Predicate("dept", 1)) == (2,)

    def test_unknown_predicate_affects_nothing(self):
        index = RelevanceIndex((PERSON,))
        assert index.disjuncts_for(Predicate("other", 1)) == ()
        assert index.affected({Predicate("other", 1)}) == ()

    def test_affected_is_the_sorted_union(self):
        index = RelevanceIndex((PERSON, EMPLOYEE, WORKS_IN_DEPT))
        affected = index.affected(
            {Predicate("dept", 1), Predicate("person", 1)}
        )
        assert affected == (0, 2)


class TestOverlayInstance:
    def test_relation_is_the_union(self):
        base = RelationalInstance()
        base.add(Atom.of("p", a))
        view = OverlayInstance(base, [Atom.of("p", b), Atom.of("q", c)])
        assert view.relation(Predicate("p", 1)) == frozenset(
            {Atom.of("p", a), Atom.of("p", b)}
        )
        assert view.relation(Predicate("q", 1)) == frozenset({Atom.of("q", c)})

    def test_matching_filters_extras_positionally(self):
        base = RelationalInstance()
        base.add(Atom.of("r", a, b))
        view = OverlayInstance(base, [Atom.of("r", a, c), Atom.of("r", b, c)])
        matched = view.matching(Predicate("r", 2), {1: a})
        assert matched == frozenset({Atom.of("r", a, b), Atom.of("r", a, c)})


class TestNetChanges:
    def test_insert_then_delete_cancels(self):
        fact = Atom.of("p", a)
        assert net_changes([(True, fact), (False, fact)]) == (set(), set())

    def test_delete_then_reinsert_cancels(self):
        fact = Atom.of("p", a)
        assert net_changes([(False, fact), (True, fact)]) == (set(), set())

    def test_net_sets_are_disjoint(self):
        added, removed = net_changes(
            [(True, Atom.of("p", a)), (False, Atom.of("p", b))]
        )
        assert added == {Atom.of("p", a)}
        assert removed == {Atom.of("p", b)}


class TestUnifyFact:
    def test_binds_variables(self):
        assert unify_fact(Atom.of("r", X, Y), Atom.of("r", a, b)) == {X: a, Y: b}

    def test_repeated_variable_must_agree(self):
        assert unify_fact(Atom.of("r", X, X), Atom.of("r", a, a)) == {X: a}
        assert unify_fact(Atom.of("r", X, X), Atom.of("r", a, b)) is None

    def test_constant_mismatch(self):
        assert unify_fact(Atom.of("r", a), Atom.of("r", b)) is None
        assert unify_fact(Atom.of("r", a), Atom.of("s", a)) is None


class TestPinnedAnswers:
    def test_residual_join_over_the_view(self):
        instance = RelationalInstance()
        instance.add(Atom.of("works", a, b))
        instance.add(Atom.of("works", c, b))
        instance.add(Atom.of("dept", b))
        body, answer_terms = WORKS_IN_DEPT.body, WORKS_IN_DEPT.answer_terms
        # Pinning the dept fact recovers every worker joined through it.
        assert pinned_answers(body, answer_terms, Atom.of("dept", b), instance) == {
            (a,),
            (c,),
        }
        # Pinning one works fact yields only that worker.
        assert pinned_answers(
            body, answer_terms, Atom.of("works", a, b), instance
        ) == {(a,)}

    def test_irrelevant_fact_pins_nothing(self):
        instance = RelationalInstance()
        instance.add(Atom.of("works", a, b))
        body, answer_terms = WORKS_IN_DEPT.body, WORKS_IN_DEPT.answer_terms
        assert pinned_answers(body, answer_terms, Atom.of("other", a), instance) == frozenset()


class TestDerives:
    def test_rederivation_check(self):
        instance = RelationalInstance()
        instance.add(Atom.of("works", a, b))
        instance.add(Atom.of("dept", b))
        body, answer_terms = WORKS_IN_DEPT.body, WORKS_IN_DEPT.answer_terms
        assert derives(body, answer_terms, (a,), instance)
        assert not derives(body, answer_terms, (c,), instance)


class TestMaintainedAnswerSet:
    def make(self, *facts, **instance_kwargs):
        instance = RelationalInstance(**instance_kwargs)
        for fact in facts:
            instance.add(fact)
        maintained = MaintainedAnswerSet((PERSON, EMPLOYEE))
        return instance, maintained

    def test_initial_refresh_is_full(self):
        instance, maintained = self.make(Atom.of("person", a))
        delta = maintained.refresh(instance)
        assert delta.mode == "full"
        assert delta.added == {(a,)} and not delta.removed
        assert maintained.tuples == {(a,)}
        assert maintained.epoch == instance.epoch

    def test_insert_is_maintained_incrementally(self):
        instance, maintained = self.make(Atom.of("person", a))
        maintained.refresh(instance)
        instance.add(Atom.of("employee", b))
        delta = maintained.refresh(instance)
        assert delta.mode == "incremental"
        assert delta.added == {(b,)} and not delta.removed
        assert maintained.tuples == {(a,), (b,)}

    def test_delete_is_maintained_incrementally(self):
        instance, maintained = self.make(Atom.of("person", a), Atom.of("person", b))
        maintained.refresh(instance)
        instance.remove(Atom.of("person", b))
        delta = maintained.refresh(instance)
        assert delta.mode == "incremental"
        assert delta.removed == {(b,)} and not delta.added
        assert maintained.tuples == {(a,)}

    def test_support_counts_survive_single_disjunct_deletion(self):
        # a is both a person and an employee: losing one derivation must
        # not drop the answer.
        instance, maintained = self.make(
            Atom.of("person", a), Atom.of("employee", a)
        )
        maintained.refresh(instance)
        assert maintained.support((a,)) == 2
        instance.remove(Atom.of("employee", a))
        delta = maintained.refresh(instance)
        assert delta.empty
        assert maintained.support((a,)) == 1
        assert maintained.tuples == {(a,)}
        instance.remove(Atom.of("person", a))
        delta = maintained.refresh(instance)
        assert delta.removed == {(a,)}
        assert maintained.support((a,)) == 0

    def test_join_disjunct_delete_rederives_survivors(self):
        instance = RelationalInstance()
        for fact in (
            Atom.of("works", a, b),
            Atom.of("works", a, c),
            Atom.of("dept", b),
            Atom.of("dept", c),
        ):
            instance.add(fact)
        maintained = MaintainedAnswerSet((WORKS_IN_DEPT,))
        maintained.refresh(instance)
        assert maintained.tuples == {(a,)}
        # Losing dept(b) over-deletes (a,), but works(a,c) ∧ dept(c)
        # rederives it — DRed's second pass.
        instance.remove(Atom.of("dept", b))
        delta = maintained.refresh(instance)
        assert delta.empty
        assert maintained.tuples == {(a,)}
        instance.remove(Atom.of("dept", c))
        delta = maintained.refresh(instance)
        assert delta.removed == {(a,)}

    def test_noop_when_epoch_unchanged(self):
        instance, maintained = self.make(Atom.of("person", a))
        maintained.refresh(instance)
        delta = maintained.refresh(instance)
        assert delta.mode == "noop" and delta.empty
        assert maintained.counters.noop_refreshes == 1

    def test_truncated_log_falls_back_to_full(self):
        instance, maintained = self.make(
            Atom.of("person", a), max_tracked_changes=2
        )
        maintained.refresh(instance)
        for index in range(5):
            instance.add(Atom.of("person", Constant(f"p{index}")))
        assert instance.changes_since(maintained.epoch) is None
        delta = maintained.refresh(instance)
        assert delta.mode == "full"
        assert maintained.counters.truncation_fallbacks == 1
        assert maintained.tuples == evaluate_ucq((PERSON, EMPLOYEE), instance)

    def test_oversize_delta_falls_back_to_full(self):
        instance, maintained = self.make(Atom.of("person", a))
        maintained.refresh(instance)
        # Churn 3 facts in and out: the 6-entry log outweighs the
        # 1-fact database, so replaying it is a loss.
        for value in (b, c, Constant("d")):
            instance.add(Atom.of("person", value))
        for value in (b, c, Constant("d")):
            instance.remove(Atom.of("person", value))
        delta = maintained.refresh(instance)
        assert delta.mode == "full" and delta.empty
        assert maintained.counters.oversize_fallbacks == 1

    def test_instance_swap_forces_full_refresh(self):
        first, maintained = self.make(Atom.of("person", a))
        maintained.refresh(first)
        second = RelationalInstance()
        second.add(Atom.of("employee", b))
        delta = maintained.refresh(second)
        assert delta.mode == "full"
        assert delta.added == {(b,)} and delta.removed == {(a,)}

    def test_describe_reports_counters(self):
        instance, maintained = self.make(Atom.of("person", a))
        maintained.refresh(instance)
        instance.add(Atom.of("person", b))
        maintained.refresh(instance)
        report = maintained.describe()
        assert report["answers"] == 2
        assert report["disjuncts"] == 2
        assert report["full_refreshes"] == 1
        assert report["incremental_refreshes"] == 1
        # The employee disjunct was skipped by the relevance index.
        assert report["disjuncts_skipped"] == 1


class TestPreparedQueryMaintenance:
    @pytest.mark.parametrize("backend", ("memory", "sqlite"))
    def test_poll_tracks_mutations(self, backend):
        from repro.api import OBDASystem
        from repro.dependencies.tgd import tgd
        from repro.dependencies.theory import OntologyTheory

        theory = OntologyTheory(
            tgds=[tgd(Atom.of("employee", X), Atom.of("person", X))],
            name="maintain",
        )
        system = OBDASystem(theory)
        system.add_facts([("person", ("ann",)), ("employee", ("bob",))])
        prepared = system.prepare(cq([Atom.of("person", X)], (X,)), backend)
        delta = prepared.poll()
        assert delta.mode == "full"
        assert prepared.maintained_answers == {
            (Constant("ann"),),
            (Constant("bob"),),
        }
        system.add_fact("employee", ("carol",))
        delta = prepared.poll()
        assert delta.mode == "incremental"
        assert delta.added == {(Constant("carol"),)}
        # The maintained set matches a from-scratch execution exactly.
        assert prepared.maintained_answers == prepared.execute().tuples
        system.close()

    def test_invalidate_resets_the_maintainer(self):
        from repro.api import OBDASystem
        from repro.dependencies.theory import OntologyTheory

        system = OBDASystem(OntologyTheory(tgds=[], name="reset"))
        system.add_fact("person", ("ann",))
        prepared = system.prepare(cq([Atom.of("person", X)], (X,)))
        maintainer = prepared.maintainer()
        prepared.poll()
        prepared.invalidate()
        assert prepared.maintainer() is not maintainer
        assert prepared.poll().mode == "full"
        system.close()
