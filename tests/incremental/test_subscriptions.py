"""Subscription-pool semantics: cursors, per-cursor deltas, lifecycle."""

import pytest

from repro.incremental import (
    SubscriptionPool,
    UnknownSubscriptionError,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.queries.conjunctive_query import ConjunctiveQuery

X = Variable("X")
QUERY = ConjunctiveQuery([Atom.of("person", X)], (X,))


class TestSubscriptionLifecycle:
    def test_cursors_are_unique_and_stable(self):
        pool = SubscriptionPool()
        first = pool.subscribe(QUERY)
        second = pool.subscribe(QUERY)
        assert first.cursor != second.cursor
        assert pool.get(first.cursor) is first
        assert pool.query_for(second.cursor) == QUERY
        assert len(pool) == 2

    def test_unsubscribe_drops_the_cursor(self):
        pool = SubscriptionPool()
        subscription = pool.subscribe(QUERY)
        pool.unsubscribe(subscription.cursor)
        assert len(pool) == 0
        with pytest.raises(UnknownSubscriptionError):
            pool.get(subscription.cursor)
        with pytest.raises(UnknownSubscriptionError):
            pool.unsubscribe(subscription.cursor)

    def test_unknown_cursor_raises(self):
        pool = SubscriptionPool()
        with pytest.raises(UnknownSubscriptionError):
            pool.query_for("sub-999999")
        with pytest.raises(UnknownSubscriptionError):
            pool.deliver("sub-999999", frozenset(), 0, "noop")


class TestDelivery:
    def test_delta_is_relative_to_the_last_delivery(self):
        pool = SubscriptionPool()
        subscription = pool.subscribe(QUERY)
        first = pool.deliver(subscription.cursor, frozenset({("a",)}), 1, "full")
        assert first.added == {("a",)} and not first.removed
        assert first.polls == 1
        second = pool.deliver(
            subscription.cursor, frozenset({("b",)}), 2, "incremental"
        )
        assert second.added == {("b",)}
        assert second.removed == {("a",)}
        assert second.epoch == 2 and second.mode == "incremental"
        assert second.answers == 1 and second.polls == 2

    def test_cursors_track_deliveries_independently(self):
        pool = SubscriptionPool()
        ahead = pool.subscribe(QUERY)
        behind = pool.subscribe(QUERY)
        pool.deliver(ahead.cursor, frozenset({("a",)}), 1, "full")
        # The slow subscriber still sees the full delta on its first poll.
        result = pool.deliver(behind.cursor, frozenset({("a",), ("b",)}), 2, "full")
        assert result.added == {("a",), ("b",)}

    def test_describe_counts_created_and_polls(self):
        pool = SubscriptionPool()
        subscription = pool.subscribe(QUERY)
        pool.deliver(subscription.cursor, frozenset(), 0, "noop")
        pool.unsubscribe(subscription.cursor)
        assert pool.describe() == {"active": 0, "created": 1, "polls": 1}
