"""Frontier checkpoints: kill a rewriting, resume it, get identical bytes."""

import dataclasses
import json

import pytest

from repro.cache.checkpoint import FrontierCheckpoint
from repro.core.rewriter import RewritingStatistics, TGDRewriter
from repro.queries.parser import parse_query
from repro.scheduling import SequentialStrategy
from repro.workloads import get_workload


class SimulatedKill(Exception):
    """Stands in for SIGKILL: aborts the run between expansions."""


class KillingStrategy(SequentialStrategy):
    """A sequential strategy that dies after N completed generations."""

    def __init__(self, after_generations: int) -> None:
        self._after = after_generations
        self._count = 0

    def expand_generation(self, engine, batch):
        self._count += 1
        if self._count > self._after:
            raise SimulatedKill()
        return super().expand_generation(engine, batch)


def _non_volatile(statistics: RewritingStatistics) -> dict:
    return {
        key: value
        for key, value in dataclasses.asdict(statistics).items()
        if key not in RewritingStatistics.VOLATILE_FIELDS
    }


@pytest.fixture()
def workload():
    return get_workload("A")


@pytest.fixture()
def clean_result(workload):
    engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
    return engine.rewrite(workload.query("q5"))


class TestKillAndResume:
    @pytest.mark.parametrize("killed_after", [1, 2, 3])
    def test_resumed_run_is_byte_identical(
        self, tmp_path, workload, clean_result, killed_after
    ):
        path = tmp_path / "frontier.json"
        checkpoint = FrontierCheckpoint(path)
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        with pytest.raises(SimulatedKill):
            engine.rewrite(
                workload.query("q5"),
                strategy=KillingStrategy(killed_after),
                checkpoint=checkpoint,
            )
        assert path.exists() and checkpoint.saves == killed_after

        resumed_checkpoint = FrontierCheckpoint(path)
        fresh_engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        resumed = fresh_engine.rewrite(
            workload.query("q5"), checkpoint=resumed_checkpoint
        )
        assert resumed_checkpoint.resumed_generation == killed_after
        assert resumed.ucq.queries == clean_result.ucq.queries
        assert resumed.auxiliary_queries == clean_result.auxiliary_queries
        assert _non_volatile(resumed.statistics) == _non_volatile(
            clean_result.statistics
        )
        # Completion removes the checkpoint: nothing stale to resume from.
        assert not path.exists()

    def test_uninterrupted_run_with_checkpoint_matches_plain_run(
        self, tmp_path, workload, clean_result
    ):
        checkpoint = FrontierCheckpoint(tmp_path / "frontier.json")
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        result = engine.rewrite(workload.query("q5"), checkpoint=checkpoint)
        assert result.ucq.queries == clean_result.ucq.queries
        assert checkpoint.saves >= 1
        assert not checkpoint.path.exists()

    def test_checkpoint_every_reduces_saves(self, tmp_path, workload):
        every = FrontierCheckpoint(tmp_path / "every.json", every=3)
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        engine.rewrite(workload.query("q5"), checkpoint=every)
        dense = FrontierCheckpoint(tmp_path / "dense.json")
        engine.rewrite(workload.query("q1"), checkpoint=dense)
        assert every.saves <= dense.saves or every.saves < 5

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            FrontierCheckpoint(tmp_path / "x.json", every=0)


class TestCheckpointValidity:
    def _kill(self, tmp_path, workload, query_name="q5"):
        path = tmp_path / "frontier.json"
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        with pytest.raises(SimulatedKill):
            engine.rewrite(
                workload.query(query_name),
                strategy=KillingStrategy(1),
                checkpoint=FrontierCheckpoint(path),
            )
        return path

    def test_different_query_starts_fresh(self, tmp_path, workload):
        path = self._kill(tmp_path, workload, "q5")
        checkpoint = FrontierCheckpoint(path)
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        reference = TGDRewriter(workload.theory.tgds, use_elimination=True).rewrite(
            workload.query("q1")
        )
        result = engine.rewrite(workload.query("q1"), checkpoint=checkpoint)
        assert checkpoint.resumed_generation is None
        assert result.ucq.queries == reference.ucq.queries

    def test_different_engine_options_start_fresh(self, tmp_path, workload):
        path = self._kill(tmp_path, workload)
        checkpoint = FrontierCheckpoint(path)
        plain = TGDRewriter(workload.theory.tgds)  # no elimination
        reference = TGDRewriter(workload.theory.tgds).rewrite(workload.query("q5"))
        result = plain.rewrite(workload.query("q5"), checkpoint=checkpoint)
        assert checkpoint.resumed_generation is None
        assert result.ucq.queries == reference.ucq.queries

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path, workload):
        path = tmp_path / "frontier.json"
        path.write_text("{not json", encoding="utf-8")
        checkpoint = FrontierCheckpoint(path)
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        result = engine.rewrite(workload.query("q1"), checkpoint=checkpoint)
        assert checkpoint.resumed_generation is None
        assert len(result.ucq) > 0

    def test_wrong_format_version_starts_fresh(self, tmp_path, workload):
        path = self._kill(tmp_path, workload)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format"] = FrontierCheckpoint.FORMAT_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        checkpoint = FrontierCheckpoint(path)
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        engine.rewrite(workload.query("q5"), checkpoint=checkpoint)
        assert checkpoint.resumed_generation is None

    def test_clear_is_idempotent(self, tmp_path):
        checkpoint = FrontierCheckpoint(tmp_path / "missing.json")
        checkpoint.clear()
        checkpoint.clear()

    def test_unserializable_query_skips_checkpointing(self, tmp_path):
        from repro.dependencies.tgd import tgd
        from repro.logic.atoms import Atom
        from repro.logic.terms import Constant, Variable
        from repro.queries.conjunctive_query import ConjunctiveQuery

        X = Variable("X")
        rules = [tgd(Atom.of("p", X), Atom.of("q", X))]
        # A tuple-valued constant has no exact JSON form.
        query = ConjunctiveQuery([Atom.of("q", X, Constant(("a", "b")))], (X,))
        checkpoint = FrontierCheckpoint(tmp_path / "frontier.json")
        result = TGDRewriter(rules).rewrite(query, checkpoint=checkpoint)
        assert checkpoint.saves == 0
        assert not checkpoint.path.exists()
        assert len(result.ucq) >= 1


class TestDegradedWrites:
    """Filesystem failures degrade a checkpoint, never a compile (PR 8)."""

    def _broken_path(self, tmp_path):
        # A regular file where a directory is needed: mkdir/open/unlink
        # under it all raise genuine OSErrors.
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("")
        return blocker / "nested" / "frontier.json"

    def test_unwritable_path_degrades_save_to_false(
        self, tmp_path, workload, clean_result, caplog
    ):
        checkpoint = FrontierCheckpoint(self._broken_path(tmp_path))
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        with caplog.at_level("WARNING", logger="repro.cache.checkpoint"):
            result = engine.rewrite(workload.query("q5"), checkpoint=checkpoint)
        # The compile ran to the correct answer regardless...
        assert result.ucq.queries == clean_result.ucq.queries
        # ...with every save degraded (and counted), not raised.
        assert checkpoint.saves == 0
        assert checkpoint.save_failures >= 1
        assert any(
            "checkpoint save" in record.message for record in caplog.records
        )

    def test_load_over_an_unreadable_path_starts_fresh(self, tmp_path, workload):
        checkpoint = FrontierCheckpoint(self._broken_path(tmp_path))
        engine = TGDRewriter(workload.theory.tgds, use_elimination=True)
        assert checkpoint.load(engine, workload.query("q5")) is None

    def test_clear_tolerates_filesystem_failures(self, tmp_path):
        FrontierCheckpoint(self._broken_path(tmp_path)).clear()
