"""LRU bound and compaction of the persistent rewriting store."""

import json

import pytest

from repro.cache.store import RewritingStore
from repro.core.rewriter import TGDRewriter
from repro.queries.parser import parse_query
from repro.workloads import stock_exchange_example

FINGERPRINT = "f" * 64


def _queries(count):
    return [parse_query(f"q(A) :- pred_{index}(A)") for index in range(count)]


def _result_for(query):
    theory = stock_exchange_example.theory()
    rewriter = TGDRewriter(theory.tgds)
    return rewriter.rewrite(query)


@pytest.fixture()
def results():
    return [(query, _result_for(query)) for query in _queries(5)]


class TestLruBound:
    def test_put_evicts_least_recently_served(self, tmp_path, results):
        store = RewritingStore(tmp_path, max_entries=3)
        for query, result in results[:3]:
            store.put(query, FINGERPRINT, result)
        assert len(store) == 3
        # Touch the oldest entry so it becomes the most recent...
        assert store.get(results[0][0], FINGERPRINT) is not None
        # ...then push past the bound: the LRU entry now is results[1].
        store.put(results[3][0], FINGERPRINT, results[3][1])
        assert len(store) == 3
        assert store.statistics.evicted == 1
        assert store.get(results[0][0], FINGERPRINT) is not None
        assert store.get(results[1][0], FINGERPRINT) is None
        assert store.get(results[3][0], FINGERPRINT) is not None

    def test_eviction_rewrites_the_file_atomically(self, tmp_path, results):
        store = RewritingStore(tmp_path, max_entries=2)
        for query, result in results[:4]:
            store.put(query, FINGERPRINT, result)
        lines = [
            json.loads(line)
            for line in store.path.read_text(encoding="utf-8").splitlines()
            if line
        ]
        assert len(lines) == 2
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 2
        assert reopened.get(results[3][0], FINGERPRINT) is not None

    def test_bound_is_applied_to_a_preexisting_file(self, tmp_path, results):
        unbounded = RewritingStore(tmp_path)
        for query, result in results:
            unbounded.put(query, FINGERPRINT, result)
        bounded = RewritingStore(tmp_path, max_entries=2)
        assert len(bounded) == 2
        assert bounded.statistics.evicted == 3
        # Never-served entries rank by file position: oldest evicted first.
        assert bounded.get(results[0][0], FINGERPRINT) is None
        assert bounded.get(results[4][0], FINGERPRINT) is not None

    def test_rejects_non_positive_bound(self, tmp_path):
        with pytest.raises(ValueError):
            RewritingStore(tmp_path, max_entries=0)

    def test_reput_after_eviction_leaves_no_duplicate_records(self, tmp_path, results):
        # Evict-miss-recompile cycle: entry 0 is evicted from the index
        # while its record still sits in the lazily rewritten file.
        # Re-putting it must purge the stale record first, or a reload
        # would count the duplicate pair against the bound.
        store = RewritingStore(tmp_path, max_entries=3)
        for query, result in results[:4]:
            store.put(query, FINGERPRINT, result)
        assert store.get(results[0][0], FINGERPRINT) is None  # evicted
        assert store.put(results[0][0], FINGERPRINT, results[0][1])
        reopened = RewritingStore(tmp_path, max_entries=3)
        assert len(reopened) == 3
        digests = [record["digest"] for record in reopened]
        assert len(digests) == len(set(digests))
        assert reopened.get(results[0][0], FINGERPRINT) is not None


class TestCompact:
    def test_compact_keeps_the_most_recent_entries(self, tmp_path, results):
        store = RewritingStore(tmp_path)
        for query, result in results:
            store.put(query, FINGERPRINT, result)
        assert store.get(results[0][0], FINGERPRINT) is not None
        removed = store.compact(max_entries=2)
        assert removed == 3
        assert len(store) == 2
        assert store.get(results[0][0], FINGERPRINT) is not None
        assert store.get(results[4][0], FINGERPRINT) is not None
        assert store.get(results[2][0], FINGERPRINT) is None

    def test_compact_without_any_bound_is_rejected(self, tmp_path):
        store = RewritingStore(tmp_path)
        with pytest.raises(ValueError):
            store.compact()

    def test_compact_is_a_noop_below_the_bound(self, tmp_path, results):
        store = RewritingStore(tmp_path)
        for query, result in results[:2]:
            store.put(query, FINGERPRINT, result)
        assert store.compact(max_entries=10) == 0
        assert len(store) == 2

    def test_compacted_entries_round_trip(self, tmp_path, results):
        store = RewritingStore(tmp_path)
        for query, result in results:
            store.put(query, FINGERPRINT, result)
        store.compact(max_entries=3)
        reopened = RewritingStore(tmp_path)
        served = reopened.get(results[4][0], FINGERPRINT)
        assert served is not None
        assert repr(served.ucq) == repr(results[4][1].ucq)

    def test_prune_keeps_recency_consistent(self, tmp_path, results):
        store = RewritingStore(tmp_path)
        for query, result in results[:3]:
            store.put(query, FINGERPRINT, result)
        other = "e" * 64
        store.put(results[3][0], other, results[3][1])
        assert store.prune(FINGERPRINT) == 1
        assert store.compact(max_entries=2) == 1
        assert len(store) == 2
