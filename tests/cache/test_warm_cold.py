"""Warm-start correctness of the compile-once serving layer.

The contract of the persistent cache is that a warm start is
indistinguishable from a cold start except for speed: byte-identical
rewritings (same ``repr``, same SQL), identical sizes, and structural
invalidation the moment the theory changes.
"""

import pytest

from repro.api import OBDASystem
from repro.cache.store import RewritingStore
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.workloads import get_workload, stock_exchange_example
from tests.integration.test_regression_sizes import EXPECTED_SIZES


class TestRunningExampleWarmStart:
    def test_warm_result_is_byte_identical_to_cold(self, tmp_path):
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()

        cold_system = OBDASystem(theory, cache=tmp_path)
        cold = cold_system.compile(query)
        assert cold.statistics.persistent_cache_misses == 1

        warm_system = OBDASystem(theory, cache=tmp_path)
        warm = warm_system.compile(query)
        assert warm.statistics.persistent_cache_hits == 1
        assert list(warm.ucq) == list(cold.ucq)
        assert repr(warm.ucq) == repr(cold.ucq)
        assert warm.auxiliary_queries == cold.auxiliary_queries
        assert warm_system.to_sql(query) == cold_system.to_sql(query)

    def test_warm_hit_is_shared_across_elimination_settings_never(self, tmp_path):
        # NY and NY* have different fingerprints: a warm NY* store must not
        # serve the plain NY engine.
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        OBDASystem(theory, use_elimination=True, cache=tmp_path).compile(query)
        plain = OBDASystem(theory, use_elimination=False, cache=tmp_path)
        result = plain.compile(query)
        assert result.statistics.persistent_cache_misses == 1
        assert len(result.ucq) == 100  # the pinned NY size

    def test_variant_query_is_served_from_the_store(self, tmp_path):
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        cold = OBDASystem(theory, cache=tmp_path).compile(query)
        renamed = query.rename_variables(prefix="V")
        warm = OBDASystem(theory, cache=tmp_path).compile(renamed)
        assert warm.statistics.persistent_cache_hits == 1
        assert len(warm.ucq) == len(cold.ucq)


class TestTable1WarmStart:
    WORKLOAD = "S"

    def test_warm_sizes_match_the_pinned_table1_sizes(self, tmp_path):
        workload = get_workload(self.WORKLOAD)
        expected = EXPECTED_SIZES[self.WORKLOAD]

        def compile_all(elim):
            system = OBDASystem(workload.theory, use_elimination=elim, cache=tmp_path)
            results = system.compile_many(
                workload.query(name) for name in workload.query_names
            )
            return system, dict(zip(workload.query_names, results))

        for run in ("cold", "warm"):
            _, plain = compile_all(False)
            _, optimised = compile_all(True)
            for name, (ny_size, ny_star_size) in expected.items():
                assert len(plain[name].ucq) == ny_size, (run, name)
                assert len(optimised[name].ucq) == ny_star_size, (run, name)

        system, results = compile_all(True)
        assert all(r.statistics.persistent_cache_hits == 1 for r in results.values())
        info = system.rewriting_cache_info()
        assert info.persistent_hits == len(results)
        assert info.persistent_misses == 0

    def test_warm_rewritings_are_byte_identical(self, tmp_path):
        workload = get_workload(self.WORKLOAD)
        query = workload.query("q3")
        cold = OBDASystem(workload.theory, cache=tmp_path).compile(query)
        warm = OBDASystem(workload.theory, cache=tmp_path).compile(query)
        assert repr(warm.ucq) == repr(cold.ucq)
        assert warm.statistics.persistent_cache_hits == 1


class TestInvalidationOnTheoryChange:
    def make_theory(self, extra_rule=False):
        X, Z = Variable("X"), Variable("Z")
        rules = [
            tgd(Atom.of("project", X), Atom.of("has_leader", X, Z), label="s1"),
            tgd(Atom.of("has_leader", X, Z), Atom.of("leader", Z), label="s2"),
        ]
        if extra_rule:
            rules.append(tgd(Atom.of("leader", X), Atom.of("person", X), label="s3"))
        return OntologyTheory(tgds=rules, name="projects")

    @pytest.fixture()
    def query(self):
        from repro.queries.parser import parse_query

        return parse_query("q(A) :- leader(A)")

    def test_added_tgd_invalidates(self, tmp_path, query):
        cold = OBDASystem(self.make_theory(), cache=tmp_path).compile(query)
        grown = OBDASystem(self.make_theory(extra_rule=True), cache=tmp_path)
        recompiled = grown.compile(query)
        assert recompiled.statistics.persistent_cache_misses == 1
        assert len(cold.ucq) == len(recompiled.ucq)  # q is unaffected here,
        # but it must be *recompiled*, not served from the stale entry.

    def test_removed_tgd_invalidates(self, tmp_path, query):
        OBDASystem(self.make_theory(extra_rule=True), cache=tmp_path).compile(query)
        shrunk = OBDASystem(self.make_theory(), cache=tmp_path)
        assert shrunk.compile(query).statistics.persistent_cache_misses == 1

    def test_same_theory_different_rule_order_still_hits(self, tmp_path, query):
        theory = self.make_theory()
        OBDASystem(theory, cache=tmp_path).compile(query)
        reordered = OntologyTheory(tgds=list(reversed(theory.tgds)), name="projects")
        warm = OBDASystem(reordered, cache=tmp_path).compile(query)
        assert warm.statistics.persistent_cache_hits == 1

    def test_prune_reclaims_stale_entries(self, tmp_path, query):
        OBDASystem(self.make_theory(), cache=tmp_path).compile(query)
        grown = OBDASystem(self.make_theory(extra_rule=True), cache=tmp_path)
        grown.compile(query)
        store = grown.rewriting_store
        assert len(store) == 2
        assert store.prune(grown.theory_fingerprint) == 1
        assert len(store) == 1


class TestSharedStoreInstance:
    def test_one_store_serves_many_systems(self, tmp_path):
        store = RewritingStore(tmp_path)
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        OBDASystem(theory, cache=store).compile(query)
        warm = OBDASystem(theory, cache=store).compile(query)
        assert warm.statistics.persistent_cache_hits == 1
        assert store.statistics.hits == 1
        assert store.statistics.stores == 1


class TestDegradedStoreWrites:
    """A failed store write must never fail (or lose) a finished compile."""

    def test_store_write_failure_degrades_to_memory_serving(self, tmp_path, caplog):
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        system = OBDASystem(theory, cache=tmp_path)

        def refuse(*args, **kwargs):
            raise OSError("disk full")

        system._store.put = refuse
        with caplog.at_level("WARNING", logger="repro.api"):
            result = system.compile(query)
        assert len(result.ucq) >= 1
        assert any("store write failed" in r.message for r in caplog.records)
        info = system.rewriting_cache_info()
        assert info.persistent_write_failures == 1
        # The in-process cache still serves the compile warm...
        again = system.compile(query)
        assert repr(again.ucq) == repr(result.ucq)
        assert system.rewriting_cache_info().hits == 1
        system.close()
        # ...but nothing reached the (refusing) disk.
        cold = OBDASystem(theory, cache=tmp_path)
        assert cold.compile(query).statistics.persistent_cache_misses == 1
        cold.close()
