"""Persistent serve recency: true-LRU eviction across processes."""

from repro.cache.store import RewritingStore
from repro.core.rewriter import TGDRewriter
from repro.workloads import get_workload


def compiled_queries(count=5):
    workload = get_workload("S")
    rewriter = TGDRewriter(workload.theory.tgds)
    names = list(workload.query_names)[:count]
    return [
        (workload.query(name), rewriter.rewrite(workload.query(name)))
        for name in names
    ]


class TestPersistentRecency:
    def test_serve_order_survives_a_reopen(self, tmp_path):
        items = compiled_queries(3)
        store = RewritingStore(tmp_path)
        for query, result in items:
            store.put(query, "fp", result)
        # Serve the *oldest-written* entry so it becomes most recent.
        assert store.get(items[0][0], "fp") is not None

        reopened = RewritingStore(tmp_path)  # a new "process"
        removed = reopened.compact(max_entries=1)
        assert removed == 2
        assert reopened.get(items[0][0], "fp") is not None, (
            "true-LRU must keep the most recently *served* entry, "
            "not the most recently written one"
        )

    def test_without_a_log_eviction_falls_back_to_oldest_first(self, tmp_path):
        items = compiled_queries(3)
        store = RewritingStore(tmp_path)
        for query, result in items:
            store.put(query, "fp", result)
        (tmp_path / RewritingStore.RECENCY_FILENAME).unlink()

        reopened = RewritingStore(tmp_path)
        reopened.compact(max_entries=1)
        assert reopened.get(items[-1][0], "fp") is not None

    def test_corrupt_log_lines_are_ignored(self, tmp_path):
        items = compiled_queries(2)
        store = RewritingStore(tmp_path)
        for query, result in items:
            store.put(query, "fp", result)
        log = tmp_path / RewritingStore.RECENCY_FILENAME
        log.write_text(
            "not-a-timestamp deadbeef\n\ngarbage\n" + log.read_text(),
            encoding="utf-8",
        )
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 2
        assert reopened.get(items[0][0], "fp") is not None

    def test_log_is_compacted_with_the_store(self, tmp_path):
        items = compiled_queries(4)
        store = RewritingStore(tmp_path)
        for query, result in items:
            store.put(query, "fp", result)
        for query, _ in items:
            store.get(query, "fp")
        store.compact(max_entries=2)
        log = tmp_path / RewritingStore.RECENCY_FILENAME
        lines = [line for line in log.read_text().splitlines() if line]
        assert len(lines) <= 2, "compaction must drop evicted digests from the log"

    def test_log_growth_is_bounded_on_a_serve_only_workload(self, tmp_path):
        # Fully warm deployments only ever serve: the growth bound must
        # hold without a single put.
        items = compiled_queries(1)
        store = RewritingStore(tmp_path)
        store.put(items[0][0], "fp", items[0][1])
        for _ in range(600):
            store.get(items[0][0], "fp")
        log = tmp_path / RewritingStore.RECENCY_FILENAME
        lines = [line for line in log.read_text().splitlines() if line]
        assert len(lines) <= max(256, 4 * len(store)) + 1

    def test_oversized_log_is_folded_back_at_open(self, tmp_path):
        items = compiled_queries(1)
        store = RewritingStore(tmp_path)
        store.put(items[0][0], "fp", items[0][1])
        log = tmp_path / RewritingStore.RECENCY_FILENAME
        line = log.read_text().splitlines()[0]
        log.write_text("\n".join([line] * 500) + "\n", encoding="utf-8")
        RewritingStore(tmp_path)
        lines = [l for l in log.read_text().splitlines() if l]
        assert len(lines) <= 1

    def test_recency_log_does_not_change_store_bytes(self, tmp_path):
        items = compiled_queries(2)
        store = RewritingStore(tmp_path)
        for query, result in items:
            store.put(query, "fp", result)
        before = store.path.read_bytes()
        for query, _ in items:
            store.get(query, "fp")
        assert store.path.read_bytes() == before
