"""Exact JSON round-tripping of terms, queries and rewriting results."""

import json
from dataclasses import fields

import pytest

from repro.cache.serialization import (
    UnserializableQueryError,
    query_from_json,
    query_to_json,
    result_from_json,
    result_to_json,
    term_from_json,
    term_to_json,
)
from repro.core.rewriter import RewritingStatistics, TGDRewriter
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.parser import parse_query
from repro.workloads import stock_exchange_example


class TestTermRoundTrip:
    @pytest.mark.parametrize(
        "term",
        [
            Variable("X"),
            Variable("W17"),
            Constant("acme"),
            Constant("Acme"),  # upper-case constant the text parser cannot express
            Constant(42),
            Constant(True),
            Constant(2.5),
            Null(7),
        ],
    )
    def test_round_trip_through_json_text(self, term):
        payload = json.loads(json.dumps(term_to_json(term)))
        assert term_from_json(payload) == term

    def test_non_scalar_constant_is_rejected(self):
        with pytest.raises(UnserializableQueryError):
            term_to_json(Constant((1, 2)))


class TestQueryRoundTrip:
    def test_round_trip_preserves_everything(self):
        query = parse_query("answers(A, B) :- p(A, C), q(C, B, acme), r(B, 3)")
        reloaded = query_from_json(json.loads(json.dumps(query_to_json(query))))
        assert reloaded == query
        assert repr(reloaded) == repr(query)
        assert reloaded.head_name == "answers"

    def test_round_trip_preserves_body_order(self):
        query = ConjunctiveQuery(
            [Atom.of("b", Variable("X")), Atom.of("a", Variable("X"))]
        )
        reloaded = query_from_json(query_to_json(query))
        assert reloaded.body == query.body


class TestResultRoundTrip:
    def test_running_example_round_trips_byte_identically(self):
        theory = stock_exchange_example.theory()
        query = stock_exchange_example.running_query()
        result = TGDRewriter(theory.tgds, use_elimination=True).rewrite(query)
        payload = json.loads(json.dumps(result_to_json(result)))
        reloaded = result_from_json(payload, rules=result.rules)
        assert reloaded.query == result.query
        assert list(reloaded.ucq) == list(result.ucq)
        assert reloaded.auxiliary_queries == result.auxiliary_queries
        assert repr(reloaded.ucq) == repr(result.ucq)
        # Algorithmic counters round-trip intact; the volatile ones
        # (wall-clock, memo shares, serving-cache counters) are zeroed so
        # that stored bytes depend only on (rules, options, query).
        for field_ in fields(RewritingStatistics):
            expected = getattr(result.statistics, field_.name)
            if field_.name in RewritingStatistics.VOLATILE_FIELDS:
                expected = type(expected)()
            assert getattr(reloaded.statistics, field_.name) == expected, field_.name
        assert reloaded.statistics.elapsed_seconds == 0.0
