"""Theory fingerprints: invariance under presentation, sensitivity to semantics."""

from repro.cache.fingerprint import (
    constraint_signature,
    rule_signature,
    theory_fingerprint,
)
from repro.dependencies.constraints import NegativeConstraint
from repro.dependencies.tgd import tgd
from repro.logic.atoms import Atom
from repro.logic.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

SIGMA_1 = tgd(Atom.of("project", X), Atom.of("has_leader", X, Z))
SIGMA_2 = tgd(Atom.of("has_leader", X, Y), Atom.of("leader", Y))
SIGMA_3 = tgd(Atom.of("leader", X), Atom.of("person", X))


class TestRuleSignature:
    def test_invariant_under_variable_renaming(self):
        renamed = tgd(Atom.of("project", Y), Atom.of("has_leader", Y, X))
        assert rule_signature(SIGMA_1) == rule_signature(renamed)

    def test_invariant_under_label(self):
        labelled = tgd(Atom.of("project", X), Atom.of("has_leader", X, Z), label="s1")
        assert rule_signature(SIGMA_1) == rule_signature(labelled)

    def test_distinguishes_different_rules(self):
        assert rule_signature(SIGMA_1) != rule_signature(SIGMA_2)

    def test_distinguishes_variable_sharing_patterns(self):
        joined = tgd(Atom.of("has_leader", X, X), Atom.of("leader", X))
        assert rule_signature(SIGMA_2) != rule_signature(joined)


class TestTheoryFingerprint:
    def test_invariant_under_rule_order(self):
        assert theory_fingerprint([SIGMA_1, SIGMA_2]) == theory_fingerprint(
            [SIGMA_2, SIGMA_1]
        )

    def test_changes_when_tgd_added(self):
        assert theory_fingerprint([SIGMA_1, SIGMA_2]) != theory_fingerprint(
            [SIGMA_1, SIGMA_2, SIGMA_3]
        )

    def test_changes_when_tgd_removed(self):
        assert theory_fingerprint([SIGMA_1, SIGMA_2]) != theory_fingerprint([SIGMA_1])

    def test_changes_with_engine_options(self):
        base = theory_fingerprint([SIGMA_1])
        assert theory_fingerprint([SIGMA_1], use_elimination=True) != base
        assert theory_fingerprint([SIGMA_1], use_nc_pruning=True) != base

    def test_changes_with_engine_version(self):
        assert theory_fingerprint([SIGMA_1], engine_version=1) != theory_fingerprint(
            [SIGMA_1], engine_version=2
        )

    def test_constraints_only_matter_when_pruning(self):
        nc = NegativeConstraint([Atom.of("leader", X), Atom.of("project", X)])
        assert theory_fingerprint([SIGMA_1], [nc]) == theory_fingerprint([SIGMA_1])
        assert theory_fingerprint(
            [SIGMA_1], [nc], use_nc_pruning=True
        ) != theory_fingerprint([SIGMA_1], use_nc_pruning=True)

    def test_constraint_signature_is_renaming_invariant(self):
        first = NegativeConstraint([Atom.of("leader", X), Atom.of("project", X)])
        second = NegativeConstraint([Atom.of("leader", Z), Atom.of("project", Z)])
        assert constraint_signature(first) == constraint_signature(second)
