"""Batch resume manifests: kill a multi-query compile, redo only the tail."""

import json

import pytest

from repro.api import OBDASystem
from repro.cache.checkpoint import BatchCheckpoint
from repro.scheduling import SequentialStrategy
from repro.workloads import get_workload

from .test_checkpoint import KillingStrategy, SimulatedKill


@pytest.fixture()
def workload():
    return get_workload("A")


@pytest.fixture()
def queries(workload):
    return [workload.query("q1"), workload.query("q5")]


def _manifest(batch: BatchCheckpoint) -> dict:
    return json.loads(batch.manifest_path.read_text(encoding="utf-8"))


class CountingStrategy(SequentialStrategy):
    """Counts frontier generations, to aim the kill inside the second member."""

    def __init__(self) -> None:
        self.generations = 0

    def expand_generation(self, engine, batch):
        self.generations += 1
        return super().expand_generation(engine, batch)


def _generations_for(workload, query) -> int:
    strategy = CountingStrategy()
    OBDASystem(workload.theory).compile_many([query], strategy=strategy)
    return strategy.generations


class TestManifest:
    def test_begin_writes_one_entry_per_position(self, tmp_path, queries):
        batch = BatchCheckpoint(tmp_path)
        resumed = batch.begin("fp", queries)
        assert resumed == frozenset()
        payload = _manifest(batch)
        assert payload["format"] == BatchCheckpoint.FORMAT_VERSION
        assert payload["fingerprint"] == "fp"
        assert [entry["completed"] for entry in payload["entries"]] == [
            False,
            False,
        ]

    def test_completed_flags_survive_a_rerun(self, tmp_path, queries):
        first = BatchCheckpoint(tmp_path)
        first.begin("fp", queries)
        first.mark_completed(queries[0])
        rerun = BatchCheckpoint(tmp_path)
        resumed = rerun.begin("fp", queries)
        assert resumed == frozenset({BatchCheckpoint.digest("fp", queries[0])})

    def test_foreign_fingerprint_discards_the_manifest(self, tmp_path, queries):
        first = BatchCheckpoint(tmp_path)
        first.begin("fp", queries)
        first.mark_completed(queries[0])
        rerun = BatchCheckpoint(tmp_path)
        assert rerun.begin("other-fp", queries) == frozenset()

    def test_different_query_set_discards_the_manifest(self, tmp_path, queries):
        first = BatchCheckpoint(tmp_path)
        first.begin("fp", queries)
        first.mark_completed(queries[0])
        rerun = BatchCheckpoint(tmp_path)
        assert rerun.begin("fp", queries[:1]) == frozenset()

    def test_corrupt_manifest_starts_fresh(self, tmp_path, queries):
        batch = BatchCheckpoint(tmp_path)
        batch.begin("fp", queries)
        batch.manifest_path.write_text("not json", encoding="utf-8")
        assert BatchCheckpoint(tmp_path).begin("fp", queries) == frozenset()

    def test_finish_only_removes_a_complete_manifest(self, tmp_path, queries):
        batch = BatchCheckpoint(tmp_path)
        batch.begin("fp", queries)
        batch.mark_completed(queries[0])
        batch.finish()
        assert batch.manifest_path.exists()
        batch.mark_completed(queries[1], resumed_generation=2)
        payload = _manifest(batch)
        assert payload["entries"][1]["resumed_generation"] == 2
        batch.finish()
        assert not batch.manifest_path.exists()

    def test_duplicate_queries_complete_together(self, tmp_path, queries):
        # Duplicates share a digest (and a frontier checkpoint): finishing
        # the digest must finish every batch position, or the manifest
        # would never be considered complete.
        batch = BatchCheckpoint(tmp_path)
        batch.begin("fp", [queries[0], queries[0]])
        batch.mark_completed(queries[0])
        assert [entry["completed"] for entry in _manifest(batch)["entries"]] == [
            True,
            True,
        ]
        batch.finish()
        assert not batch.manifest_path.exists()

    def test_checkpoint_for_requires_begin(self, tmp_path, queries):
        with pytest.raises(RuntimeError):
            BatchCheckpoint(tmp_path).checkpoint_for(queries[0])

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            BatchCheckpoint(tmp_path, every=0)


class TestKilledBatchResume:
    def _clean_results(self, workload, queries):
        system = OBDASystem(workload.theory)
        return system.compile_many(queries)

    def test_rerun_redoes_only_the_interrupted_member(
        self, tmp_path, workload, queries
    ):
        reference = self._clean_results(workload, queries)
        directory = tmp_path / "batch"
        # Let the first member (q1) complete, then die inside q5.
        generations_for_q1 = _generations_for(workload, queries[0])
        killed_system = OBDASystem(workload.theory)
        with pytest.raises(SimulatedKill):
            killed_system.compile_many(
                queries,
                strategy=KillingStrategy(generations_for_q1 + 1),
                checkpoint_dir=directory,
            )
        manifest = json.loads(
            (directory / BatchCheckpoint.MANIFEST_NAME).read_text(
                encoding="utf-8"
            )
        )
        assert [entry["completed"] for entry in manifest["entries"]] == [
            True,
            False,
        ]
        # The in-flight member left its frontier checkpoint behind.
        assert list(directory.glob("*.ckpt.json"))

        resumed = killed_system.compile_many(
            queries, strategy=SequentialStrategy(), checkpoint_dir=directory
        )
        assert [list(result.ucq) for result in resumed] == [
            list(result.ucq) for result in reference
        ]
        # A finished batch cleans up after itself: no manifest, no
        # leftover frontier checkpoints.
        assert not (directory / BatchCheckpoint.MANIFEST_NAME).exists()
        assert not list(directory.glob("*.ckpt.json"))

    def test_fresh_process_resumes_through_the_store(
        self, tmp_path, workload, queries
    ):
        reference = self._clean_results(workload, queries)
        directory = tmp_path / "batch"
        store = tmp_path / "store"
        generations_for_q1 = _generations_for(workload, queries[0])
        with pytest.raises(SimulatedKill):
            OBDASystem(workload.theory, cache=store).compile_many(
                queries,
                strategy=KillingStrategy(generations_for_q1 + 1),
                checkpoint_dir=directory,
            )
        # A brand-new system (same theory, same store) — the completed
        # member is served from the persistent store, the interrupted one
        # resumes from its frontier checkpoint.
        fresh = OBDASystem(workload.theory, cache=store)
        resumed = fresh.compile_many(queries, checkpoint_dir=directory)
        assert [list(result.ucq) for result in resumed] == [
            list(result.ucq) for result in reference
        ]
        assert fresh.rewriting_cache_info().persistent_hits >= 1
        assert not (directory / BatchCheckpoint.MANIFEST_NAME).exists()

    def test_clean_batch_leaves_no_residue(self, tmp_path, workload, queries):
        directory = tmp_path / "batch"
        system = OBDASystem(workload.theory)
        results = system.compile_many(queries, checkpoint_dir=directory)
        assert [len(result.ucq) for result in results] == [
            len(result.ucq) for result in self._clean_results(workload, queries)
        ]
        assert not (directory / BatchCheckpoint.MANIFEST_NAME).exists()
        assert not list(directory.glob("*.ckpt.json"))
