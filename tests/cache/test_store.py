"""RewritingStore behaviour: persistence, varianthood, versioning, pruning."""

import json

from repro.cache.fingerprint import theory_fingerprint
from repro.cache.store import RewritingStore
from repro.core.rewriter import TGDRewriter
from repro.dependencies.tgd import tgd
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.parser import parse_query

X, Z = Variable("X"), Variable("Z")
RULES = (
    tgd(Atom.of("project", X), Atom.of("has_leader", X, Z)),
    tgd(Atom.of("has_leader", X, Z), Atom.of("leader", Z)),
)
FINGERPRINT = theory_fingerprint(RULES)


def compile_query(text: str):
    query = parse_query(text)
    return query, TGDRewriter(RULES).rewrite(query)


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        assert store.put(query, FINGERPRINT, result)
        served = store.get(query, FINGERPRINT, rules=RULES)
        assert served is not None
        assert list(served.ucq) == list(result.ucq)
        assert repr(served.ucq) == repr(result.ucq)
        assert served.rules == RULES

    def test_variant_query_hits(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- has_leader(A, B)")
        store.put(query, FINGERPRINT, result)
        variant = parse_query("q(P) :- has_leader(P, Leader)")
        served = store.get(variant, FINGERPRINT)
        assert served is not None
        assert len(served.ucq) == len(result.ucq)
        assert store.statistics.hits == 1

    def test_duplicate_put_is_refused(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        assert store.put(query, FINGERPRINT, result)
        variant = parse_query("q(B) :- leader(B)")
        assert not store.put(variant, FINGERPRINT, result)
        assert len(store) == 1

    def test_unserializable_query_is_reported_not_stored(self, tmp_path):
        store = RewritingStore(tmp_path)
        query = parse_query("q(A) :- leader(A)")
        frozen = query.apply({Variable("A"): Constant((1, 2))})
        result = TGDRewriter(RULES).rewrite(query)
        result.query = frozen  # smuggle in a non-scalar constant
        assert not store.put(frozen, FINGERPRINT, result)
        assert store.statistics.uncacheable == 1
        assert len(store) == 0


class TestPersistence:
    def test_entries_survive_reopening(self, tmp_path):
        query, result = compile_query("q(A) :- leader(A)")
        RewritingStore(tmp_path).put(query, FINGERPRINT, result)
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 1
        served = reopened.get(query, FINGERPRINT)
        assert served is not None
        assert repr(served.ucq) == repr(result.ucq)

    def test_corrupt_trailing_line_is_skipped(self, tmp_path):
        query, result = compile_query("q(A) :- leader(A)")
        store = RewritingStore(tmp_path)
        store.put(query, FINGERPRINT, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"format":1,"digest":"truncated')
        reopened = RewritingStore(tmp_path)
        assert reopened.get(query, FINGERPRINT) is not None
        assert reopened.statistics.skipped_records == 1

    def test_append_after_torn_line_loses_only_the_torn_line(self, tmp_path):
        first, first_result = compile_query("q(A) :- leader(A)")
        second, second_result = compile_query("q(A) :- has_leader(A, B)")
        store = RewritingStore(tmp_path)
        store.put(first, FINGERPRINT, first_result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"format":1,"digest":"torn')  # crash mid-append
        survivor = RewritingStore(tmp_path)
        survivor.put(second, FINGERPRINT, second_result)
        reopened = RewritingStore(tmp_path)
        assert reopened.get(first, FINGERPRINT) is not None
        assert reopened.get(second, FINGERPRINT) is not None
        assert reopened.statistics.skipped_records == 1  # the torn line only

    def test_other_format_versions_are_skipped(self, tmp_path):
        query, result = compile_query("q(A) :- leader(A)")
        store = RewritingStore(tmp_path)
        store.put(query, FINGERPRINT, result)
        record = json.loads(store.path.read_text().strip())
        record["format"] = RewritingStore.FORMAT_VERSION + 1
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.statistics.skipped_records == 1


class TestInvalidation:
    def test_fingerprint_mismatch_misses(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        store.put(query, FINGERPRINT, result)
        other = theory_fingerprint(RULES[:1])
        assert store.get(query, other) is None
        assert store.statistics.misses == 1

    def test_prune_drops_stale_fingerprints(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        store.put(query, FINGERPRINT, result)
        store.put(query, "stale-fingerprint", result)
        assert len(store) == 2
        assert store.prune(FINGERPRINT) == 1
        assert len(store) == 1
        assert store.fingerprints == frozenset({FINGERPRINT})
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(query, FINGERPRINT) is not None

    def test_prune_without_stale_entries_is_a_no_op(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        store.put(query, FINGERPRINT, result)
        before = store.path.read_bytes()
        assert store.prune(FINGERPRINT) == 0
        assert store.path.read_bytes() == before


class TestCanonicalKeyCollisions:
    # p(X,Y),p(Y,X) and p(X,X),p(Y,Y) share a canonical key but are not
    # variants: the store must keep them apart (invariant 1 of repro.cache).
    CYCLE = "q() :- p(X, Y), p(Y, X)"
    LOOPS = "q() :- p(X, X), p(Y, Y)"

    def test_colliding_non_variants_are_kept_apart(self, tmp_path):
        store = RewritingStore(tmp_path)
        cycle, cycle_result = compile_query(self.CYCLE)
        loops, loops_result = compile_query(self.LOOPS)
        assert cycle.canonical_key == loops.canonical_key  # the premise
        assert store.put(cycle, FINGERPRINT, cycle_result)
        assert store.get(loops, FINGERPRINT) is None
        assert store.statistics.collisions == 1
        assert store.put(loops, FINGERPRINT, loops_result)
        served_cycle = store.get(cycle, FINGERPRINT)
        served_loops = store.get(loops, FINGERPRINT)
        assert repr(served_cycle.query) == repr(cycle)
        assert repr(served_loops.query) == repr(loops)
