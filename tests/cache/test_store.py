"""RewritingStore behaviour: persistence, varianthood, versioning, pruning."""

import json

from repro.cache.fingerprint import theory_fingerprint
from repro.cache.store import RewritingStore
from repro.core.rewriter import TGDRewriter
from repro.dependencies.tgd import tgd
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.parser import parse_query

X, Z = Variable("X"), Variable("Z")
RULES = (
    tgd(Atom.of("project", X), Atom.of("has_leader", X, Z)),
    tgd(Atom.of("has_leader", X, Z), Atom.of("leader", Z)),
)
FINGERPRINT = theory_fingerprint(RULES)


def compile_query(text: str):
    query = parse_query(text)
    return query, TGDRewriter(RULES).rewrite(query)


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        assert store.put(query, FINGERPRINT, result)
        served = store.get(query, FINGERPRINT, rules=RULES)
        assert served is not None
        assert list(served.ucq) == list(result.ucq)
        assert repr(served.ucq) == repr(result.ucq)
        assert served.rules == RULES

    def test_variant_query_hits(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- has_leader(A, B)")
        store.put(query, FINGERPRINT, result)
        variant = parse_query("q(P) :- has_leader(P, Leader)")
        served = store.get(variant, FINGERPRINT)
        assert served is not None
        assert len(served.ucq) == len(result.ucq)
        assert store.statistics.hits == 1

    def test_duplicate_put_is_refused(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        assert store.put(query, FINGERPRINT, result)
        variant = parse_query("q(B) :- leader(B)")
        assert not store.put(variant, FINGERPRINT, result)
        assert len(store) == 1

    def test_unserializable_query_is_reported_not_stored(self, tmp_path):
        store = RewritingStore(tmp_path)
        query = parse_query("q(A) :- leader(A)")
        frozen = query.apply({Variable("A"): Constant((1, 2))})
        result = TGDRewriter(RULES).rewrite(query)
        result.query = frozen  # smuggle in a non-scalar constant
        assert not store.put(frozen, FINGERPRINT, result)
        assert store.statistics.uncacheable == 1
        assert len(store) == 0


class TestPersistence:
    def test_entries_survive_reopening(self, tmp_path):
        query, result = compile_query("q(A) :- leader(A)")
        RewritingStore(tmp_path).put(query, FINGERPRINT, result)
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 1
        served = reopened.get(query, FINGERPRINT)
        assert served is not None
        assert repr(served.ucq) == repr(result.ucq)

    def test_corrupt_trailing_line_is_skipped(self, tmp_path):
        query, result = compile_query("q(A) :- leader(A)")
        store = RewritingStore(tmp_path)
        store.put(query, FINGERPRINT, result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"format":1,"digest":"truncated')
        reopened = RewritingStore(tmp_path)
        assert reopened.get(query, FINGERPRINT) is not None
        assert reopened.statistics.skipped_records == 1

    def test_append_after_torn_line_loses_only_the_torn_line(self, tmp_path):
        first, first_result = compile_query("q(A) :- leader(A)")
        second, second_result = compile_query("q(A) :- has_leader(A, B)")
        store = RewritingStore(tmp_path)
        store.put(first, FINGERPRINT, first_result)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"format":1,"digest":"torn')  # crash mid-append
        survivor = RewritingStore(tmp_path)
        survivor.put(second, FINGERPRINT, second_result)
        reopened = RewritingStore(tmp_path)
        assert reopened.get(first, FINGERPRINT) is not None
        assert reopened.get(second, FINGERPRINT) is not None
        # The append truncated the torn bytes first: the file is clean.
        assert reopened.statistics.skipped_records == 0

    def test_other_format_versions_are_skipped(self, tmp_path):
        query, result = compile_query("q(A) :- leader(A)")
        store = RewritingStore(tmp_path)
        store.put(query, FINGERPRINT, result)
        record = json.loads(store.path.read_text().strip())
        record["format"] = RewritingStore.FORMAT_VERSION + 1
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.statistics.skipped_records == 1


class TestInvalidation:
    def test_fingerprint_mismatch_misses(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        store.put(query, FINGERPRINT, result)
        other = theory_fingerprint(RULES[:1])
        assert store.get(query, other) is None
        assert store.statistics.misses == 1

    def test_prune_drops_stale_fingerprints(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        store.put(query, FINGERPRINT, result)
        store.put(query, "stale-fingerprint", result)
        assert len(store) == 2
        assert store.prune(FINGERPRINT) == 1
        assert len(store) == 1
        assert store.fingerprints == frozenset({FINGERPRINT})
        reopened = RewritingStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(query, FINGERPRINT) is not None

    def test_prune_without_stale_entries_is_a_no_op(self, tmp_path):
        store = RewritingStore(tmp_path)
        query, result = compile_query("q(A) :- leader(A)")
        store.put(query, FINGERPRINT, result)
        before = store.path.read_bytes()
        assert store.prune(FINGERPRINT) == 0
        assert store.path.read_bytes() == before


class TestCanonicalKeyCollisions:
    # p(X,Y),p(Y,X) and p(X,X),p(Y,Y) share a canonical key but are not
    # variants: the store must keep them apart (invariant 1 of repro.cache).
    CYCLE = "q() :- p(X, Y), p(Y, X)"
    LOOPS = "q() :- p(X, X), p(Y, Y)"

    def test_colliding_non_variants_are_kept_apart(self, tmp_path):
        store = RewritingStore(tmp_path)
        cycle, cycle_result = compile_query(self.CYCLE)
        loops, loops_result = compile_query(self.LOOPS)
        assert cycle.canonical_key == loops.canonical_key  # the premise
        assert store.put(cycle, FINGERPRINT, cycle_result)
        assert store.get(loops, FINGERPRINT) is None
        assert store.statistics.collisions == 1
        assert store.put(loops, FINGERPRINT, loops_result)
        served_cycle = store.get(cycle, FINGERPRINT)
        served_loops = store.get(loops, FINGERPRINT)
        assert repr(served_cycle.query) == repr(cycle)
        assert repr(served_loops.query) == repr(loops)


class TestTornRecordValidation:
    """The trailing line must *fully* parse, not just look like a record.

    A crash mid-append can truncate a record anywhere — including after
    the ``{"format":1,"digest":"..."}`` prefix the fast-path matcher
    accepts.  The final line of a file without a trailing newline is
    therefore validated with a full JSON parse; a torn one is skipped
    (and logged), and ``compact()`` physically repairs the file.
    """

    def test_prefix_valid_truncation_is_skipped_and_compacted_away(
        self, tmp_path, caplog
    ):
        first, first_result = compile_query("q(A) :- leader(A)")
        second, second_result = compile_query("q(A) :- has_leader(A, B)")
        store = RewritingStore(tmp_path)
        store.put(first, FINGERPRINT, first_result)
        store.put(second, FINGERPRINT, second_result)

        # Tear the second record mid-payload: the survivor keeps its
        # newline, the torn tail still matches the record prefix.
        text = store.path.read_text()
        lines = text.splitlines(keepends=True)
        torn = lines[-1][: int(len(lines[-1]) * 0.8)].rstrip("\n")
        assert RewritingStore._RECORD_PREFIX.match(torn)  # the premise
        store.path.write_text("".join(lines[:-1]) + torn)

        with caplog.at_level("WARNING", logger="repro.cache.store"):
            reopened = RewritingStore(tmp_path)
        assert reopened.get(first, FINGERPRINT) is not None
        assert reopened.get(second, FINGERPRINT) is None
        assert reopened.statistics.skipped_records == 1
        assert any("torn trailing record" in r.message for r in caplog.records)

        # compact() rewrites the file from the index: the torn bytes are
        # gone for good and the next open is clean.
        reopened.compact(max_entries=100)
        clean = RewritingStore(tmp_path)
        assert clean.statistics.skipped_records == 0
        assert clean.get(first, FINGERPRINT) is not None
        assert len(clean) == 1

    def test_interior_lines_keep_the_fast_path(self, tmp_path):
        # Lines followed by a newline are trusted via the prefix matcher;
        # only the newline-less trailing line pays for a full parse.
        first, first_result = compile_query("q(A) :- leader(A)")
        store = RewritingStore(tmp_path)
        store.put(first, FINGERPRINT, first_result)
        reopened = RewritingStore(tmp_path)  # file ends with "\n"
        assert reopened.statistics.skipped_records == 0
        assert reopened.get(first, FINGERPRINT) is not None

    def test_put_after_prefix_valid_torn_line_recovers(self, tmp_path):
        first, first_result = compile_query("q(A) :- leader(A)")
        second, second_result = compile_query("q(A) :- has_leader(A, B)")
        store = RewritingStore(tmp_path)
        store.put(first, FINGERPRINT, first_result)
        text = store.path.read_text().rstrip("\n")
        store.path.write_text(text[: int(len(text) * 0.8)])  # crash mid-append

        survivor = RewritingStore(tmp_path)
        assert survivor.statistics.skipped_records == 1
        assert survivor.put(second, FINGERPRINT, second_result)
        reopened = RewritingStore(tmp_path)
        # Only the torn record is lost; put() truncated its bytes before
        # appending, so the prefix-valid garbage never becomes a trusted
        # interior line on a later load.
        assert reopened.get(first, FINGERPRINT) is None
        assert reopened.get(second, FINGERPRINT) is not None
        assert reopened.statistics.skipped_records == 0
