"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestWorkloadsCommand:
    def test_lists_every_workload(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for name in ("V ", "S ", "U ", "A ", "P5 "):
            assert any(line.startswith(name) for line in output.splitlines())


class TestTable1Command:
    def test_single_workload_single_query(self, capsys):
        assert main(["table1", "V", "--systems", "NY", "NY*", "--queries", "q1"]) == 0
        output = capsys.readouterr().out
        assert "=== V" in output
        assert "NY_size" in output
        assert "q1" in output

    def test_invalid_system_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "V", "--systems", "BOGUS"])


class TestRewriteCommand:
    TBOX = """
    Student [= Person
    exists attends [= Student
    exists attends- [= Course
    Student [= exists attends
    Student [= not Course
    """

    @pytest.fixture()
    def tbox_file(self, tmp_path):
        path = tmp_path / "university.dllite"
        path.write_text(self.TBOX, encoding="utf-8")
        return str(path)

    def test_rewrites_a_query(self, tbox_file, capsys):
        assert main(["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)"]) == 0
        output = capsys.readouterr().out
        assert "perfect rewriting" in output
        assert "Student" in output

    def test_stats_output(self, tbox_file, capsys):
        assert main(
            ["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)", "--stats"]
        ) == 0
        output = capsys.readouterr().out
        assert "# rule index:" in output
        assert "skipped by head-predicate index" in output
        assert "# interning:" in output
        assert "key collisions" in output

    def test_sql_output(self, tbox_file, capsys):
        assert main(
            ["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)", "--sql"]
        ) == 0
        output = capsys.readouterr().out
        assert "SELECT DISTINCT" in output
        assert "UNION" in output

    def test_no_elimination_flag(self, tbox_file, capsys):
        assert main(
            [
                "rewrite",
                "--tbox",
                tbox_file,
                "--query",
                "q(A, B) :- Student(A), attends(A, B), Course(B)",
                "--no-elimination",
            ]
        ) == 0
        plain_output = capsys.readouterr().out
        assert main(
            [
                "rewrite",
                "--tbox",
                tbox_file,
                "--query",
                "q(A, B) :- Student(A), attends(A, B), Course(B)",
            ]
        ) == 0
        optimised_output = capsys.readouterr().out

        def size(text: str) -> int:
            return int(text.split("perfect rewriting: ")[1].split(" ")[0])

        assert size(optimised_output) <= size(plain_output)


class TestParser:
    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
