"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestWorkloadsCommand:
    def test_lists_every_workload(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for name in ("V ", "S ", "U ", "A ", "P5 "):
            assert any(line.startswith(name) for line in output.splitlines())


class TestTable1Command:
    def test_single_workload_single_query(self, capsys):
        assert main(["table1", "V", "--systems", "NY", "NY*", "--queries", "q1"]) == 0
        output = capsys.readouterr().out
        assert "=== V" in output
        assert "NY_size" in output
        assert "q1" in output

    def test_invalid_system_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "V", "--systems", "BOGUS"])


class TestRewriteCommand:
    TBOX = """
    Student [= Person
    exists attends [= Student
    exists attends- [= Course
    Student [= exists attends
    Student [= not Course
    """

    @pytest.fixture()
    def tbox_file(self, tmp_path):
        path = tmp_path / "university.dllite"
        path.write_text(self.TBOX, encoding="utf-8")
        return str(path)

    def test_rewrites_a_query(self, tbox_file, capsys):
        assert main(["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)"]) == 0
        output = capsys.readouterr().out
        assert "perfect rewriting" in output
        assert "Student" in output

    def test_stats_output(self, tbox_file, capsys):
        assert main(
            ["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)", "--stats"]
        ) == 0
        output = capsys.readouterr().out
        assert "# rule index:" in output
        assert "skipped by head-predicate index" in output
        assert "# interning:" in output
        assert "key collisions" in output

    def test_sql_output(self, tbox_file, capsys):
        assert main(
            ["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)", "--sql"]
        ) == 0
        output = capsys.readouterr().out
        assert "SELECT DISTINCT" in output
        assert "UNION" in output

    def test_no_elimination_flag(self, tbox_file, capsys):
        assert main(
            [
                "rewrite",
                "--tbox",
                tbox_file,
                "--query",
                "q(A, B) :- Student(A), attends(A, B), Course(B)",
                "--no-elimination",
            ]
        ) == 0
        plain_output = capsys.readouterr().out
        assert main(
            [
                "rewrite",
                "--tbox",
                tbox_file,
                "--query",
                "q(A, B) :- Student(A), attends(A, B), Course(B)",
            ]
        ) == 0
        optimised_output = capsys.readouterr().out

        def size(text: str) -> int:
            return int(text.split("perfect rewriting: ")[1].split(" ")[0])

        assert size(optimised_output) <= size(plain_output)


class TestCompileCommand:
    TBOX = TestRewriteCommand.TBOX

    @pytest.fixture()
    def tbox_file(self, tmp_path):
        path = tmp_path / "university.dllite"
        path.write_text(self.TBOX, encoding="utf-8")
        return str(path)

    @pytest.fixture()
    def queries_file(self, tmp_path):
        path = tmp_path / "queries.cq"
        path.write_text(
            "# workload queries\n"
            "q(A) :- Person(A)\n"
            "\n"
            "q(A, B) :- Student(A), attends(A, B)\n",
            encoding="utf-8",
        )
        return str(path)

    def test_compiles_a_query_file(self, tbox_file, queries_file, capsys):
        assert main(["compile", "--tbox", tbox_file, "--queries", queries_file]) == 0
        output = capsys.readouterr().out
        assert "line 2:" in output
        assert "line 4:" in output
        assert "# compiled 2 queries" in output

    def test_workload_defaults_to_its_table2_queries(self, capsys):
        assert main(["compile", "--workload", "S"]) == 0
        output = capsys.readouterr().out
        for name in ("q1", "q2", "q3", "q4", "q5"):
            assert f"{name}:" in output

    def test_cold_then_warm_cache_run(self, tbox_file, queries_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--cache", cache, "--stats"]
        ) == 0
        cold = capsys.readouterr().out
        assert "2 misses" in cold
        assert "# theory fingerprint:" in cold
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--cache", cache, "--fail-on-miss"]
        ) == 0
        warm = capsys.readouterr().out
        assert "cache hit" in warm
        assert "2 persistent hits" in warm

    def test_fail_on_miss_fails_cold(self, tbox_file, queries_file, tmp_path, capsys):
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--cache", str(tmp_path / "cache"), "--fail-on-miss"]
        ) == 1
        assert "not served from the cache" in capsys.readouterr().err

    def test_fail_on_miss_reports_every_miss(
        self, tbox_file, queries_file, tmp_path, capsys
    ):
        # Both queries miss a cold cache: both must be named on stderr, and
        # the command must exit non-zero exactly once (not after the first).
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--cache", str(tmp_path / "cache"), "--fail-on-miss"]
        ) == 1
        captured = capsys.readouterr()
        assert "error: cache miss: line 2" in captured.err
        assert "error: cache miss: line 4" in captured.err
        assert "2 queries were not served" in captured.err
        # Both compilations still ran and were reported on stdout.
        assert "line 2:" in captured.out
        assert "line 4:" in captured.out

    def test_workers_flag_compiles_in_parallel(
        self, tbox_file, queries_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--cache", cache, "--workers", "2"]
        ) == 0
        parallel = capsys.readouterr().out
        assert "# compiled 2 queries" in parallel
        # The parallel cold run fills the cache exactly like a sequential one.
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--cache", cache, "--workers", "1", "--fail-on-miss"]
        ) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_non_positive_workers_is_a_clean_cli_error(
        self, tbox_file, queries_file, capsys
    ):
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--workers", "0"]
        ) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_stats_prints_workload_totals(
        self, tbox_file, queries_file, capsys
    ):
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file, "--stats"]
        ) == 0
        output = capsys.readouterr().out
        assert "# workload totals:" in output
        assert "queries processed" in output

    def test_fail_on_miss_requires_a_cache(self, tbox_file, queries_file, capsys):
        assert main(
            ["compile", "--tbox", tbox_file, "--queries", queries_file,
             "--fail-on-miss"]
        ) == 2
        assert "requires --cache" in capsys.readouterr().err

    def test_duplicate_queries_are_reported_as_in_process_hits(
        self, tbox_file, tmp_path, capsys
    ):
        path = tmp_path / "dup.cq"
        path.write_text("q(A) :- Person(A)\nq(A) :- Person(A)\n", encoding="utf-8")
        assert main(["compile", "--tbox", tbox_file, "--queries", str(path)]) == 0
        output = capsys.readouterr().out
        assert "in-process hit" in output

    def test_tbox_without_queries_is_rejected(self, tbox_file):
        with pytest.raises(SystemExit):
            main(["compile", "--tbox", tbox_file])

    def test_tbox_and_workload_are_mutually_exclusive(self, tbox_file):
        with pytest.raises(SystemExit):
            main(["compile", "--tbox", tbox_file, "--workload", "S"])


class TestCacheCompactCommand:
    def _fill_cache(self, directory):
        from repro.cache.store import RewritingStore
        from repro.core.rewriter import TGDRewriter
        from repro.queries.parser import parse_query
        from repro.workloads import stock_exchange_example

        store = RewritingStore(directory)
        rewriter = TGDRewriter(stock_exchange_example.theory().tgds)
        for index in range(4):
            query = parse_query(f"q(A) :- pred_{index}(A)")
            store.put(query, "f" * 64, rewriter.rewrite(query))
        return store

    def test_compact_bounds_the_store(self, tmp_path, capsys):
        from repro.cache.store import RewritingStore

        cache = str(tmp_path / "cache")
        self._fill_cache(cache)
        assert main(
            ["cache", "compact", "--cache", cache, "--max-entries", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "4 -> 2 entries" in output
        assert "2 evicted" in output
        assert len(RewritingStore(cache)) == 2

    def test_compact_below_bound_is_a_noop(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._fill_cache(cache)
        assert main(
            ["cache", "compact", "--cache", cache, "--max-entries", "10"]
        ) == 0
        assert "0 evicted" in capsys.readouterr().out

    def test_non_positive_max_entries_is_a_clean_cli_error(self, tmp_path, capsys):
        assert main(
            ["cache", "compact", "--cache", str(tmp_path), "--max-entries", "0"]
        ) == 2
        assert "--max-entries must be >= 1" in capsys.readouterr().err

    def test_cache_subcommand_is_required(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestAnswerCommand:
    def test_workload_on_both_backends_agrees(self, capsys):
        assert main(
            ["answer", "--workload", "S", "--backend", "both", "--repeat", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "[memory]" in output and "[sqlite]" in output
        assert "cache hits" in output

    def test_query_filter_restricts_the_run(self, capsys):
        assert main(
            ["answer", "--workload", "S", "--query", "q1", "--show", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "q1 [memory]" in output
        assert "q2" not in output

    def test_sql_flag_prints_the_sqlite_plan(self, capsys):
        assert main(
            ["answer", "--workload", "S", "--query", "q1", "--sql"]
        ) == 0
        output = capsys.readouterr().out
        assert "-- q1" in output
        assert "SELECT DISTINCT" in output

    def test_tbox_mode_answers_a_data_file(self, tmp_path, capsys):
        tbox = tmp_path / "theory.dllite"
        tbox.write_text("Student [= Person\n", encoding="utf-8")
        data = tmp_path / "facts.txt"
        data.write_text(
            "# facts\nStudent(kim)\nPerson('lee')\n", encoding="utf-8"
        )
        queries = tmp_path / "queries.txt"
        queries.write_text("q(A) :- Person(A)\n", encoding="utf-8")
        assert main(
            [
                "answer",
                "--tbox", str(tbox),
                "--data", str(data),
                "--queries", str(queries),
                "--backend", "both",
                "--show", "5",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "2 answers" in output
        assert "Const('kim')" in output

    def test_tbox_mode_requires_data(self, tmp_path, capsys):
        tbox = tmp_path / "theory.dllite"
        tbox.write_text("Student [= Person\n", encoding="utf-8")
        assert main(["answer", "--tbox", str(tbox)]) == 2
        assert "--data" in capsys.readouterr().err

    def test_unknown_query_filter_is_a_clean_error(self, capsys):
        assert main(["answer", "--workload", "S", "--query", "q9"]) == 2
        assert "no queries left" in capsys.readouterr().err


class TestParser:
    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestStrategyFlags:
    TBOX = TestRewriteCommand.TBOX

    @pytest.fixture()
    def tbox_file(self, tmp_path):
        path = tmp_path / "university.dllite"
        path.write_text(self.TBOX, encoding="utf-8")
        return str(path)

    def test_rewrite_strategies_print_identical_ucqs(self, tbox_file, capsys):
        outputs = {}
        for strategy in ("sequential", "threaded", "chunked"):
            assert main([
                "rewrite", "--tbox", tbox_file,
                "--query", "q(A) :- Person(A)",
                "--strategy", strategy, "--workers", "2",
            ]) == 0
            lines = capsys.readouterr().out.splitlines()
            outputs[strategy] = [line for line in lines if not line.startswith("#")]
        assert outputs["sequential"] == outputs["threaded"] == outputs["chunked"]

    def test_compile_accepts_a_strategy(self, capsys):
        assert main(["compile", "--workload", "S", "--strategy", "chunked",
                     "--workers", "2"]) == 0
        assert "compiled 5 queries" in capsys.readouterr().out

    def test_unknown_strategy_is_rejected(self, tbox_file):
        with pytest.raises(SystemExit):
            main(["rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)",
                  "--strategy", "bogus"])


class TestRewriteCheckpointFlags:
    TBOX = TestRewriteCommand.TBOX

    @pytest.fixture()
    def tbox_file(self, tmp_path):
        path = tmp_path / "university.dllite"
        path.write_text(self.TBOX, encoding="utf-8")
        return str(path)

    def test_checkpoint_file_is_cleared_on_completion(self, tbox_file, tmp_path, capsys):
        checkpoint = tmp_path / "frontier.json"
        assert main([
            "rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)",
            "--checkpoint", str(checkpoint),
        ]) == 0
        assert not checkpoint.exists()
        assert "perfect rewriting" in capsys.readouterr().out

    def test_resume_requires_checkpoint(self, tbox_file, capsys):
        assert main([
            "rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)",
            "--resume",
        ]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_stale_checkpoint_is_discarded_without_resume(self, tbox_file, tmp_path, capsys):
        checkpoint = tmp_path / "frontier.json"
        checkpoint.write_text("{stale", encoding="utf-8")
        assert main([
            "rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)",
            "--checkpoint", str(checkpoint),
        ]) == 0
        assert not checkpoint.exists()

    def test_resume_flag_accepts_a_missing_file(self, tbox_file, tmp_path, capsys):
        checkpoint = tmp_path / "frontier.json"
        assert main([
            "rewrite", "--tbox", tbox_file, "--query", "q(A) :- Person(A)",
            "--checkpoint", str(checkpoint), "--resume",
        ]) == 0
        output = capsys.readouterr().out
        assert "resumed" not in output


class TestFuzzCommand:
    def test_bounded_run_passes(self, capsys):
        assert main(
            ["fuzz", "--seed", "0", "--cases", "2", "--fragment", "linear"]
        ) == 0
        output = capsys.readouterr().out
        assert "# linear: 2 cases, 2 ok, 0 skipped, 0 failed (seed 0)" in output
        assert "linear[0] ok" in output

    def test_quiet_suppresses_per_case_lines(self, capsys):
        assert main(
            ["fuzz", "--seed", "0", "--cases", "2", "--fragment", "linear",
             "--quiet"]
        ) == 0
        output = capsys.readouterr().out
        assert "linear[0]" not in output
        assert "# linear: 2 cases" in output

    def test_all_fragments_by_default(self, capsys):
        assert main(["fuzz", "--seed", "0", "--cases", "1", "--quiet"]) == 0
        output = capsys.readouterr().out
        for fragment in ("linear", "sticky", "sticky-join"):
            assert f"# {fragment}: 1 cases" in output

    def test_replay_of_a_clean_repro_passes(self, tmp_path, capsys):
        from repro.fuzzing.generator import WorkloadGenerator
        from repro.fuzzing.shrink import write_repro

        case = WorkloadGenerator(seed=0).case(0)
        path = write_repro(tmp_path / "case.json", case)
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_replay_prints_the_recorded_failure(self, tmp_path, capsys):
        from repro.fuzzing.generator import WorkloadGenerator
        from repro.fuzzing.oracle import OracleFailure
        from repro.fuzzing.shrink import write_repro

        case = WorkloadGenerator(seed=0).case(0)
        failure = OracleFailure("chase", "recorded for the test")
        path = write_repro(tmp_path / "case.json", case, failure)
        assert main(["fuzz", "--replay", str(path)]) == 0
        output = capsys.readouterr().out
        assert "# recorded failure: [chase] recorded for the test" in output

    def test_invalid_fragment_is_a_parser_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--fragment", "guarded"])


class TestServeCommand:
    def test_parser_accepts_the_serving_flags(self):
        arguments = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--cache", "/tmp/cache",
                "--max-tenants", "8",
                "--backend", "sqlite",
                "--preload", "acme=S", "beta=U",
            ]
        )
        assert arguments.port == 0
        assert arguments.max_tenants == 8
        assert arguments.backend == "sqlite"
        assert arguments.preload == ["acme=S", "beta=U"]

    def test_bad_preload_spec_is_a_clean_error(self, capsys):
        assert main(["serve", "--port", "0", "--preload", "no-equals-sign"]) == 2
        assert "NAME=WORKLOAD" in capsys.readouterr().err

    def test_unknown_preload_workload_fails_before_binding(self, capsys):
        assert main(["serve", "--port", "0", "--preload", "acme=nope"]) == 2
        assert "preload acme=nope failed" in capsys.readouterr().err

    def test_unknown_backend_is_a_parser_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "postgres"])


class TestResilienceFlags:
    def test_parser_accepts_the_resilience_flags(self):
        arguments = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--compile-timeout", "5.0",
                "--answer-timeout", "2.0",
                "--max-inflight-compiles", "4",
                "--queue-depth", "32",
                "--breaker-threshold", "2",
            ]
        )
        assert arguments.compile_timeout == 5.0
        assert arguments.answer_timeout == 2.0
        assert arguments.max_inflight_compiles == 4
        assert arguments.queue_depth == 32
        assert arguments.breaker_threshold == 2

    def test_resilience_defaults_match_the_config(self):
        from repro.serving.resilience import ResilienceConfig

        arguments = build_parser().parse_args(["serve", "--port", "0"])
        defaults = ResilienceConfig()
        assert arguments.compile_timeout == defaults.compile_timeout
        assert arguments.answer_timeout == defaults.answer_timeout
        assert arguments.max_inflight_compiles == defaults.max_inflight_compiles
        assert arguments.queue_depth == defaults.queue_depth
        assert arguments.breaker_threshold == defaults.breaker_threshold


class TestChaosCommand:
    def test_small_seeded_run_passes(self, tmp_path, capsys):
        assert main(
            ["chaos", "--seed", "11", "--cases", "1",
             "--repro-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "chaos[0]" in output
        assert "# chaos: 1 cases, 1 ok, 0 failed (seed 11, epsilon 0.5s)" in output
        assert list(tmp_path.glob("*.json")) == []

    def test_quiet_suppresses_passing_case_lines(self, tmp_path, capsys):
        assert main(
            ["chaos", "--seed", "11", "--cases", "1", "--quiet",
             "--repro-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "chaos[0]" not in output
        assert "# chaos: 1 cases" in output

    def test_replay_of_a_clean_repro_passes(self, tmp_path, capsys):
        from repro.serving.chaos import CaseOutcome, write_chaos_repro

        path = write_chaos_repro(
            tmp_path / "case.json",
            seed=11,
            outcome=CaseOutcome(index=0, case_seed=0, fragment="linear", faults={}),
        )
        assert main(["chaos", "--replay", str(path)]) == 0
        assert "chaos[0]" in capsys.readouterr().out

    def test_replay_of_foreign_json_is_an_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "fuzz-repro"}')
        with pytest.raises(ValueError):
            main(["chaos", "--replay", str(path)])

    def test_chaos_parser_defaults(self):
        arguments = build_parser().parse_args(["chaos"])
        assert arguments.seed == 0
        assert arguments.cases == 10
        assert arguments.epsilon == 0.5
        assert arguments.repro_dir == "chaos-repros"


class TestAnswerExplain:
    def test_explain_prints_the_cost_ordered_plan(self, capsys):
        assert main(
            ["answer", "--workload", "S", "--query", "q1", "--explain"]
        ) == 0
        output = capsys.readouterr().out
        assert "backend: memory" in output
        assert "disjunct order (cheapest estimated cost first)" in output
        assert "cost ~" in output

    def test_explain_covers_both_backends(self, capsys):
        assert main(
            [
                "answer",
                "--workload",
                "S",
                "--query",
                "q1",
                "--backend",
                "both",
                "--explain",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "backend: memory" in output
        assert "backend: sqlite" in output
        assert "sql:" in output

    def test_explain_parser_default_is_off(self):
        arguments = build_parser().parse_args(["answer", "--workload", "S"])
        assert arguments.explain is False


class TestCompileCheckpointFlags:
    def test_checkpointed_compile_cleans_its_directory(self, tmp_path, capsys):
        directory = tmp_path / "batch"
        assert main(
            [
                "compile",
                "--workload",
                "S",
                "--checkpoint-dir",
                str(directory),
                "--checkpoint-every",
                "2",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "# compiled" in output
        # The batch completed, so the manifest and the per-query frontier
        # checkpoints were all cleared.
        assert not (directory / "manifest.json").exists()
        assert not list(directory.glob("*.ckpt.json"))

    def test_checkpoint_parser_defaults(self):
        arguments = build_parser().parse_args(["compile", "--workload", "S"])
        assert arguments.checkpoint_dir is None
        assert arguments.checkpoint_every == 1
