"""Tests for negative constraints and key dependencies."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Variable
from repro.dependencies.constraints import (
    KeyDependency,
    NegativeConstraint,
    is_non_conflicting,
    non_conflicting_set,
)
from repro.dependencies.tgd import tgd

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestNegativeConstraint:
    def test_empty_body_is_rejected(self):
        with pytest.raises(ValueError):
            NegativeConstraint(())

    def test_as_query_builds_a_boolean_query(self):
        constraint = NegativeConstraint(
            (Atom.of("student", X), Atom.of("professor", X)), label="disjoint"
        )
        query = constraint.as_query()
        assert query.is_boolean
        assert set(query.body) == set(constraint.body)

    def test_variables(self):
        constraint = NegativeConstraint((Atom.of("leads", X, Y),))
        assert constraint.variables == {X, Y}

    def test_repr_mentions_falsum(self):
        assert "⊥" in repr(NegativeConstraint((Atom.of("p", X),)))


class TestKeyDependency:
    def test_positions_are_validated(self):
        with pytest.raises(ValueError):
            KeyDependency(Predicate("r", 2), (3,))
        with pytest.raises(ValueError):
            KeyDependency(Predicate("r", 2), ())

    def test_positions_are_sorted_and_deduplicated(self):
        key = KeyDependency(Predicate("r", 3), (2, 1, 2))
        assert key.key_positions == (1, 2)
        assert key.non_key_positions == (3,)

    def test_violating_query_shape(self):
        key = KeyDependency(Predicate("r", 3), (1,))
        left, right, inequalities = key.violating_query().atoms()
        assert left.predicate == right.predicate == Predicate("r", 3)
        assert left[1] == right[1]  # key position shared
        assert len(inequalities) == 2  # one per non-key position


class TestNonConflicting:
    def test_different_head_predicate_is_non_conflicting(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        key = KeyDependency(Predicate("r", 2), (1,))
        assert is_non_conflicting(rule, key)

    def test_key_is_proper_subset_of_universal_positions_conflicts(self):
        # r(X, Y) -> s(X, Y): the key {1} of s is a proper subset of the
        # universal head positions {1, 2}, so a derived tuple can clash with a
        # stored one.
        rule = tgd(Atom.of("r", X, Y), Atom.of("s", X, Y))
        key = KeyDependency(Predicate("s", 2), (1,))
        assert not is_non_conflicting(rule, key)

    def test_existential_inside_key_is_non_conflicting(self):
        # p(X) -> ∃Y s(X, Y) with key {1, 2}: the key positions are not a
        # proper subset of the universal positions ({1}), so the rule can
        # never create a violating duplicate.
        rule = tgd(Atom.of("p", X), Atom.of("s", X, Y))
        key = KeyDependency(Predicate("s", 2), (1, 2))
        assert is_non_conflicting(rule, key)

    def test_whole_tuple_key_is_non_conflicting(self):
        rule = tgd(Atom.of("r", X, Y), Atom.of("s", X, Y))
        key = KeyDependency(Predicate("s", 2), (1, 2))
        assert is_non_conflicting(rule, key)

    def test_non_conflicting_set_checks_every_pair(self):
        rules = [
            tgd(Atom.of("p", X), Atom.of("q", X, Y)),
            tgd(Atom.of("r", X, Y), Atom.of("s", X, Y)),
        ]
        safe_keys = [KeyDependency(Predicate("q", 2), (1, 2))]
        unsafe_keys = [KeyDependency(Predicate("s", 2), (1,))]
        assert non_conflicting_set(rules, safe_keys)
        assert not non_conflicting_set(rules, unsafe_keys)
