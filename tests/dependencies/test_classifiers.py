"""Tests for the Datalog± language classifiers (Section 4)."""

from repro.logic.atoms import Atom, Position, Predicate
from repro.logic.terms import Variable
from repro.dependencies.classifiers import (
    affected_positions,
    classify,
    is_full,
    is_guarded,
    is_linear,
    is_sticky,
    is_sticky_join,
    is_weakly_acyclic,
    is_weakly_guarded,
    sticky_marking,
)
from repro.dependencies.tgd import TGD, tgd

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


def _r(name, *terms):
    return Atom.of(name, *terms)


class TestLinearAndGuarded:
    def test_linear_requires_single_body_atoms(self):
        assert is_linear([tgd(_r("p", X), _r("q", X, Y))])
        assert not is_linear([TGD((_r("p", X), _r("q", X, Y)), (_r("s", X),))])

    def test_paper_guardedness_examples(self):
        guarded = TGD((_r("r", X, Y), _r("s", X, Y, Z)), (_r("s", Z, X, W),))
        transitive = TGD((_r("r", X, Y), _r("r", Y, Z)), (_r("r", X, Z),))
        assert is_guarded([guarded])
        assert not is_guarded([transitive])

    def test_linear_rules_are_trivially_guarded(self):
        rules = [tgd(_r("p", X), _r("q", X, Y))]
        assert is_guarded(rules)

    def test_full_rules(self):
        assert is_full([tgd(_r("p", X), _r("q", X))])
        assert not is_full([tgd(_r("p", X), _r("q", X, Y))])


class TestAffectedPositionsAndWeakGuardedness:
    def test_existential_head_positions_are_affected(self):
        rules = [tgd(_r("p", X), _r("q", X, Y))]
        assert Position(Predicate("q", 2), 2) in affected_positions(rules)
        assert Position(Predicate("q", 2), 1) not in affected_positions(rules)

    def test_affectedness_propagates_through_rules(self):
        rules = [
            tgd(_r("p", X), _r("q", X, Y)),
            tgd(_r("q", X, Y), _r("s", Y)),
        ]
        assert Position(Predicate("s", 1), 1) in affected_positions(rules)

    def test_guarded_sets_are_weakly_guarded(self):
        rules = [TGD((_r("r", X, Y), _r("s", X, Y, Z)), (_r("s", Z, X, W),))]
        assert is_weakly_guarded(rules)

    def test_transitivity_alone_is_weakly_guarded(self):
        # Without existential rules feeding r, no position is affected, so the
        # unguarded transitivity rule is still weakly guarded.
        rules = [TGD((_r("r", X, Y), _r("r", Y, Z)), (_r("r", X, Z),))]
        assert is_weakly_guarded(rules)

    def test_weak_guardedness_can_fail(self):
        rules = [
            tgd(_r("p", X), _r("r", X, Y)),
            tgd(_r("p", X), _r("r", Y, X)),
            TGD((_r("r", X, Y), _r("r", Y, Z)), (_r("r", X, Z),)),
        ]
        assert not is_weakly_guarded(rules)


class TestWeakAcyclicity:
    def test_acyclic_hierarchy_is_weakly_acyclic(self):
        rules = [
            tgd(_r("student", X), _r("person", X)),
            tgd(_r("person", X), _r("has_id", X, Y)),
        ]
        assert is_weakly_acyclic(rules)

    def test_existential_cycle_is_not_weakly_acyclic(self):
        # person(X) -> ∃Y parent(X, Y); parent(X, Y) -> person(Y): the classic
        # infinite-chase example.
        rules = [
            tgd(_r("person", X), _r("parent", X, Y)),
            tgd(_r("parent", X, Y), _r("person", Y)),
        ]
        assert not is_weakly_acyclic(rules)

    def test_full_cycle_is_weakly_acyclic(self):
        rules = [
            tgd(_r("r", X, Y), _r("s", X, Y)),
            tgd(_r("s", X, Y), _r("r", X, Y)),
        ]
        assert is_weakly_acyclic(rules)

    def test_stock_exchange_rules_are_weakly_acyclic(self):
        from repro.workloads import stock_exchange_example

        # stock and stock_portf regenerate each other, but the cycle only
        # moves the stock identifier (positions stock[1] / stock_portf[2]);
        # fresh nulls never feed back into the cycle, so no special edge lies
        # on a cycle and the set is weakly acyclic.
        assert is_weakly_acyclic(stock_exchange_example.tgds())


class TestStickiness:
    def test_marking_marks_dropped_variables(self):
        # In r(X,Y) -> s(X), the variable Y does not appear in the head and is
        # therefore marked.
        rules = [tgd(_r("r", X, Y), _r("s", X))]
        marking = sticky_marking(rules)
        assert Y in marking[0]
        assert X not in marking[0]

    def test_join_on_unmarked_variable_is_sticky(self):
        rules = [TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Y, Z),))]
        assert is_sticky(rules)

    def test_join_on_marked_variable_is_not_sticky(self):
        # Y is joined in the body but dropped from the head.
        rules = [TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Z),))]
        assert not is_sticky(rules)

    def test_marking_propagates_backwards(self):
        rules = [
            TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Z),)),
            tgd(_r("u", X, Y), _r("r", X, Y)),
        ]
        marking = sticky_marking(rules)
        # Y of the second rule is propagated to a marked position of t? No —
        # r[2] is marked through the first rule, so Y (which the second rule
        # sends to r[2]) must be marked in the second rule as well.
        assert Y in marking[1]

    def test_linear_sets_are_sticky_join(self):
        rules = [tgd(_r("p", X), _r("q", X, Y))]
        assert is_sticky_join(rules)

    def test_sticky_sets_are_sticky_join(self):
        rules = [TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Y, Z),))]
        assert is_sticky_join(rules)

    def test_non_sticky_non_linear_is_not_recognised(self):
        rules = [TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Z),))]
        assert not is_sticky_join(rules)


class TestClassification:
    def test_stock_exchange_classification(self):
        from repro.workloads import stock_exchange_example

        summary = classify(stock_exchange_example.tgds())
        assert summary.linear
        assert summary.guarded
        assert summary.sticky
        assert summary.fo_rewritable
        assert not summary.full

    def test_fo_rewritable_via_stickiness_only(self):
        rules = [TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Y, Z),))]
        summary = classify(rules)
        assert not summary.linear
        assert summary.sticky
        assert summary.fo_rewritable

    def test_not_fo_rewritable(self):
        rules = [TGD((_r("r", X, Y), _r("s", Y, Z)), (_r("t", X, Z),))]
        summary = classify(rules)
        assert not summary.fo_rewritable
