"""Tests for the Lemma 1 / Lemma 2 normalisation of TGDs."""

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.classifiers import is_linear, is_sticky
from repro.dependencies.normalization import is_normalized, normalize
from repro.dependencies.tgd import TGD, tgd
from repro.chase.chase import chase, chase_entails
from repro.queries.conjunctive_query import ConjunctiveQuery

X, Y, Z, V, W = (Variable(n) for n in "XYZVW")
A, B = Variable("A"), Variable("B")


class TestLemma1MultiHead:
    def test_multi_head_rule_is_split(self):
        rule = TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))
        result = normalize([rule])
        assert is_normalized(result.rules)
        assert len(result.auxiliary_predicates) >= 1
        # One collector rule plus one projection per original head atom.
        assert len(result.rules) == 3

    def test_auxiliary_predicate_carries_all_head_variables(self):
        rule = TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))
        result = normalize([rule])
        auxiliary = result.auxiliary_predicates[0]
        assert auxiliary.arity == 2  # X and Y

    def test_normalisation_preserves_query_answers(self):
        rule = TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))
        database = [Atom.of("p", Constant("c"))]
        query = ConjunctiveQuery([Atom.of("q", A, B), Atom.of("r", B)], ())
        original = chase_entails(chase(database, [rule], max_depth=4), query)
        normalised = chase_entails(chase(database, normalize([rule]).rules, max_depth=6), query)
        assert original == normalised is True


class TestLemma2MultiExistential:
    def test_two_existentials_become_a_chain(self):
        rule = tgd(Atom.of("stock_portf", X, Y, Z), Atom.of("stock", Y, V, W))
        result = normalize([rule])
        assert is_normalized(result.rules)
        assert all(len(r.existential_variables) <= 1 for r in result.rules)
        assert len(result.rules) == 3  # two inventions plus the final emit

    def test_repeated_existential_occurrence_is_split(self):
        rule = tgd(Atom.of("p", X), Atom.of("r", X, Z, Z))
        result = normalize([rule])
        assert is_normalized(result.rules)
        assert len(result.rules) == 2

    def test_normalised_rules_are_returned_unchanged(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        result = normalize([rule])
        assert result.rules == [rule]
        assert result.auxiliary_predicates == []


class TestNormalisationInvariants:
    def test_is_normalized_predicate(self):
        assert is_normalized([tgd(Atom.of("p", X), Atom.of("q", X, Y))])
        assert not is_normalized(
            [TGD((Atom.of("p", X),), (Atom.of("q", X), Atom.of("r", X)))]
        )

    def test_normalisation_preserves_linearity(self):
        rules = [
            tgd(Atom.of("list_comp", X, Y), Atom.of("fin_idx", Y, Z, W)),
            TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y))),
        ]
        result = normalize(rules)
        assert is_linear(result.rules)

    def test_normalisation_preserves_stickiness_on_stock_exchange(self):
        from repro.workloads import stock_exchange_example

        rules = stock_exchange_example.tgds()
        result = normalize(rules)
        assert is_sticky(result.rules) == is_sticky(rules)

    def test_provenance_maps_back_to_original_labels(self):
        rule = tgd(Atom.of("p", X), Atom.of("r", X, Y, Z), "orig")
        result = normalize([rule])
        assert set(result.provenance.values()) == {"orig"}

    def test_stock_exchange_normalisation_counts(self):
        from repro.workloads import stock_exchange_example

        rules = stock_exchange_example.tgds()
        result = normalize(rules)
        # σ1-σ4 and σ7 have two existential variables each and are split into
        # three rules (two inventions plus the emit, introducing two auxiliary
        # predicates each); σ5, σ6, σ8, σ9 stay as they are.
        assert len(result.rules) == 5 * 3 + 4
        assert len(result.auxiliary_predicates) == 10
