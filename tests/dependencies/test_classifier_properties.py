"""Property tests: the classifiers against the workload generator.

Two directions.  Positively, every triple the generator labels with a
fragment must be *accepted* by that fragment's classifier — over many
seeds, not just the fixed ones the unit tests use.  Negatively, the
acceptance is not vacuous: hand-built near-miss rule sets one edit away
from membership must be *rejected*.
"""

import pytest

from repro.dependencies.classifiers import (
    is_linear,
    is_sticky,
    is_sticky_join,
    sticky_marking,
)
from repro.dependencies.tgd import tgd
from repro.fuzzing.generator import (
    FRAGMENT_CLASSIFIERS,
    FRAGMENTS,
    GeneratorConfig,
    WorkloadGenerator,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestGeneratedTheoriesAreAccepted:
    @pytest.mark.parametrize("fragment", FRAGMENTS)
    @pytest.mark.parametrize("seed", range(8))
    def test_labelled_fragment_is_accepted(self, fragment, seed):
        config = GeneratorConfig(fragment=fragment)
        case = WorkloadGenerator(seed=seed, config=config).case(0)
        classifier = FRAGMENT_CLASSIFIERS[fragment]
        assert classifier(list(case.theory.tgds)), case.describe()

    @pytest.mark.parametrize("seed", range(8))
    def test_every_fragment_is_sticky_join(self, seed):
        # linear ∨ sticky ⊆ sticky-join: whatever fragment was targeted,
        # the sound sticky-join recogniser must accept it too.
        for fragment in FRAGMENTS:
            config = GeneratorConfig(fragment=fragment)
            case = WorkloadGenerator(seed=seed, config=config).case(0)
            assert is_sticky_join(list(case.theory.tgds)), case.describe()

    @pytest.mark.parametrize("seed", range(4))
    def test_dense_configs_stay_inside_their_fragment(self, seed):
        # Crank the axes that stress the classifiers: joins (fan_out) and
        # existentials (density).
        config = GeneratorConfig(
            fragment="sticky",
            fan_out=4,
            existential_density=1.0,
            predicates=8,
            max_arity=4,
        )
        case = WorkloadGenerator(seed=seed, config=config).case(0)
        assert is_sticky(list(case.theory.tgds)), case.describe()


class TestNearMissesAreRejected:
    def test_two_body_atoms_break_linearity(self):
        rule = tgd([Atom.of("p", X), Atom.of("q", X)], Atom.of("r", X))
        assert not is_linear([rule])
        # Dropping either body atom restores it.
        assert is_linear([tgd(Atom.of("p", X), Atom.of("r", X))])

    def test_transitivity_is_not_sticky(self):
        # The canonical non-sticky rule: the join variable Y is absent
        # from the head, so it gets base-marked yet occurs twice.
        transitive = tgd(
            [Atom.of("p", X, Y), Atom.of("p", Y, Z)], Atom.of("q", X, Z)
        )
        assert not is_sticky([transitive])
        assert not is_sticky_join([transitive])
        marking = sticky_marking([transitive])
        assert Y in marking[0]

    def test_keeping_the_join_variable_in_the_head_restores_stickiness(self):
        kept = tgd(
            [Atom.of("p", X, Y), Atom.of("p", Y, Z)], Atom.of("q", X, Y, Z)
        )
        assert is_sticky([kept])
        assert is_sticky_join([kept])

    def test_marking_propagation_rejects_an_indirectly_lost_join(self):
        # r1's join variable Y *does* reach r1's head — but only at a
        # position that r2 then projects away, so propagation marks it.
        r1 = tgd([Atom.of("p", X, Y), Atom.of("r", Y)], Atom.of("q", X, Y))
        r2 = tgd(Atom.of("q", X, Y), Atom.of("s", X))
        assert is_sticky([r1])  # alone, r1 is sticky
        assert not is_sticky([r1, r2])  # the set is not
        assert not is_sticky_join([r1, r2])

    def test_stickiness_is_a_set_property_not_a_rule_property(self):
        # Both rules are individually sticky; the near-miss is the set.
        r1 = tgd([Atom.of("p", X, Y), Atom.of("r", Y)], Atom.of("q", X, Y))
        r2 = tgd(Atom.of("q", X, Y), Atom.of("s", X))
        assert all(is_sticky([rule]) for rule in (r1, r2))
        assert not is_sticky([r1, r2])
