"""Tests for tuple-generating dependencies."""

import pytest

from repro.logic.atoms import Atom, Position, Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable, VariableFactory
from repro.dependencies.tgd import TGD, schema_positions, schema_predicates, tgd

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestConstruction:
    def test_empty_body_or_head_is_rejected(self):
        with pytest.raises(ValueError):
            TGD((), (Atom.of("p", X),))
        with pytest.raises(ValueError):
            TGD((Atom.of("p", X),), ())

    def test_convenience_constructor_accepts_single_atoms(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y), "label")
        assert rule.body == (Atom.of("p", X),)
        assert rule.head == (Atom.of("q", X, Y),)
        assert rule.label == "label"

    def test_repr_mentions_existentials(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        assert "∃" in repr(rule)


class TestVariableClassification:
    def test_frontier_and_existential_variables(self):
        rule = TGD((Atom.of("r", X, Y),), (Atom.of("s", Y, Z),))
        assert rule.frontier == {Y}
        assert rule.existential_variables == {Z}
        assert rule.body_variables == {X, Y}
        assert rule.head_variables == {Y, Z}

    def test_full_tgd_has_no_existentials(self):
        rule = tgd(Atom.of("r", X, Y), Atom.of("s", Y, X))
        assert rule.is_full
        assert rule.existential_variables == frozenset()

    def test_constants_and_predicates(self):
        rule = tgd(Atom.of("r", X, Constant("c")), Atom.of("s", X))
        assert rule.constants == {Constant("c")}
        assert rule.predicates == {Predicate("r", 2), Predicate("s", 1)}


class TestShapePredicates:
    def test_linear_requires_single_body_atom(self):
        assert tgd(Atom.of("p", X), Atom.of("q", X)).is_linear
        assert not TGD((Atom.of("p", X), Atom.of("r", X, Y)), (Atom.of("q", X),)).is_linear

    def test_guard_detection(self):
        # The paper's guarded example: r(X,Y), s(X,Y,Z) -> ∃W s(Z,X,W).
        guarded = TGD(
            (Atom.of("r", X, Y), Atom.of("s", X, Y, Z)), (Atom.of("s", Z, X, W),)
        )
        assert guarded.is_guarded
        assert guarded.guard == Atom.of("s", X, Y, Z)
        # The transitivity rule is not guarded.
        transitive = TGD(
            (Atom.of("r", X, Y), Atom.of("r", Y, Z)), (Atom.of("r", X, Z),)
        )
        assert not transitive.is_guarded

    def test_single_head_and_normal_form(self):
        multi_head = TGD((Atom.of("p", X),), (Atom.of("q", X), Atom.of("r", X, Y)))
        assert not multi_head.is_single_head
        assert not multi_head.is_normalized
        two_existentials = tgd(Atom.of("p", X), Atom.of("r", X, Y, Z))
        assert two_existentials.is_single_head
        assert not two_existentials.is_normalized
        normalised = tgd(Atom.of("p", X), Atom.of("r", X, Y))
        assert normalised.is_normalized


class TestExistentialPosition:
    def test_position_of_single_existential(self):
        rule = tgd(Atom.of("p", X), Atom.of("r", X, Y))
        assert rule.existential_position == Position(Predicate("r", 2), 2)

    def test_full_rule_has_no_position(self):
        assert tgd(Atom.of("p", X), Atom.of("q", X)).existential_position is None

    def test_multi_head_rule_is_rejected(self):
        rule = TGD((Atom.of("p", X),), (Atom.of("q", X), Atom.of("r", X)))
        with pytest.raises(ValueError):
            rule.existential_position

    def test_repeated_existential_is_rejected(self):
        rule = tgd(Atom.of("p", X), Atom.of("r", X, Y, Y))
        with pytest.raises(ValueError):
            rule.existential_position


class TestTransformations:
    def test_apply_substitution(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        image = rule.apply(Substitution({X: Z}))
        assert image.body == (Atom.of("p", Z),)
        assert image.head == (Atom.of("q", Z, Y),)

    def test_rename_apart_only_touches_clashing_variables(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        fresh = VariableFactory(prefix="F")
        renamed = rule.rename_apart([X], fresh)
        assert X not in renamed.body_variables
        assert Y in renamed.head_variables

    def test_rename_apart_without_clash_returns_same_rule(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        assert rule.rename_apart([Z], VariableFactory()) is rule

    def test_rename_apart_never_mints_a_name_from_the_avoid_set(self):
        # The factory's first outputs are W1, W2, ... — which a query may
        # legitimately contain.  A "fresh" replacement equal to an avoided
        # variable would silently re-collide rule and query.
        W1, W2 = Variable("W1"), Variable("W2")
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        renamed = rule.rename_apart([X, W1, W2], VariableFactory(prefix="W"))
        assert (renamed.body_variables | renamed.head_variables).isdisjoint(
            {X, W1, W2}
        )

    def test_rename_apart_never_merges_rule_variables(self):
        # The replacement must also avoid the rule's own (kept) variables:
        # renaming X to Y here would turn q(X, Y) into q(Y, Y).
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))

        def always_y_then_fresh():
            yield Y
            counter = 1
            while True:
                yield Variable(f"F{counter}")
                counter += 1

        supplier = always_y_then_fresh()
        renamed = rule.rename_apart([X], lambda: next(supplier))
        assert renamed.head[0].terms[0] != renamed.head[0].terms[1]

    def test_refresh_renames_everything(self):
        rule = tgd(Atom.of("p", X), Atom.of("q", X, Y))
        refreshed = rule.refresh(VariableFactory(prefix="G"))
        assert refreshed.body_variables.isdisjoint({X, Y})
        assert refreshed.label == rule.label


class TestSchemaHelpers:
    def test_schema_predicates(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X, Y))]
        assert schema_predicates(rules) == {Predicate("p", 1), Predicate("q", 2)}

    def test_schema_positions(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X, Y))]
        positions = schema_positions(rules)
        assert Position(Predicate("q", 2), 2) in positions
        assert len(positions) == 3
