"""Tests for ontological theories (TGDs + NCs + KDs bundles)."""

from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Variable
from repro.dependencies.constraints import KeyDependency, NegativeConstraint
from repro.dependencies.tgd import TGD, tgd
from repro.dependencies.theory import OntologyTheory, theory

X, Y = Variable("X"), Variable("Y")


class TestConstruction:
    def test_builder_methods_chain(self):
        built = (
            OntologyTheory(name="t")
            .add_tgd(tgd(Atom.of("p", X), Atom.of("q", X)))
            .add_negative_constraint(NegativeConstraint((Atom.of("p", X), Atom.of("r", X)),))
            .add_key(KeyDependency(Predicate("q", 1), (1,)))
        )
        assert len(built.tgds) == 1
        assert len(built.negative_constraints) == 1
        assert len(built.key_dependencies) == 1

    def test_extend_adds_many_rules(self):
        built = OntologyTheory().extend(
            [tgd(Atom.of("p", X), Atom.of("q", X)), tgd(Atom.of("q", X), Atom.of("r", X))]
        )
        assert len(built.tgds) == 2

    def test_theory_helper(self):
        built = theory(tgds=[tgd(Atom.of("p", X), Atom.of("q", X))], name="helper")
        assert built.name == "helper"
        assert len(built.tgds) == 1

    def test_predicates_view(self):
        built = theory(tgds=[tgd(Atom.of("p", X), Atom.of("q", X, Y))])
        assert built.predicates == {Predicate("p", 1), Predicate("q", 2)}


class TestClassificationCache:
    def test_classification_is_cached_and_invalidated(self):
        built = theory(tgds=[tgd(Atom.of("p", X), Atom.of("q", X))])
        assert built.classification.linear
        built.add_tgd(
            TGD((Atom.of("q", X), Atom.of("r", X, Y)), (Atom.of("s", X),))
        )
        assert not built.classification.linear

    def test_fo_rewritable_shortcut(self):
        built = theory(tgds=[tgd(Atom.of("p", X), Atom.of("q", X, Y))])
        assert built.is_fo_rewritable


class TestKeys:
    def test_keys_are_non_conflicting_when_absent(self):
        assert theory(tgds=[tgd(Atom.of("p", X), Atom.of("q", X))]).keys_are_non_conflicting()

    def test_conflicting_keys_are_detected(self):
        built = theory(
            tgds=[tgd(Atom.of("r", X, Y), Atom.of("s", X, Y))],
            key_dependencies=[KeyDependency(Predicate("s", 2), (1,))],
        )
        assert not built.keys_are_non_conflicting()


class TestNormalisation:
    def test_normalized_produces_normal_form(self):
        built = theory(
            tgds=[TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))],
            name="multi",
        )
        normalised = built.normalized()
        assert all(rule.is_normalized for rule in normalised.tgds)
        assert normalised.theory.name == "multi_norm"
        assert normalised.auxiliary_predicates

    def test_x_variant_naming(self):
        built = theory(
            tgds=[TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))],
            name="U",
        )
        normalised = built.normalized(keep_auxiliary_in_schema=True)
        assert normalised.theory.name == "UX"
        assert normalised.auxiliary_public

    def test_constraints_are_carried_over(self):
        built = theory(
            tgds=[tgd(Atom.of("p", X), Atom.of("q", X))],
            negative_constraints=[NegativeConstraint((Atom.of("p", X), Atom.of("z", X)),)],
        )
        assert len(built.normalized().theory.negative_constraints) == 1
