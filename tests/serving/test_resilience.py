"""The resilience layer: deadlines, load shedding, circuit breakers.

Unit tests for the primitives in :mod:`repro.serving.resilience` plus
the integration contracts of PR 8's tentpole: a compile that exceeds its
budget returns 504 *with a valid frontier checkpoint on disk*, and the
retry resumes it (provably fewer generations than a cold compile);
overload sheds cold traffic with 503 + ``Retry-After`` while warm
requests sail through; deterministic compile failures trip a per-digest
breaker that probes half-open and closes on recovery.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.scheduling import SequentialStrategy
from repro.serving import ServingApp
from repro.serving.resilience import (
    CancelScope,
    CircuitBreaker,
    CircuitOpenError,
    CompileGate,
    Deadline,
    OverloadedError,
    ResilienceConfig,
)
from repro.serving.tenants import CHECKPOINT_DIRNAME

from .conftest import register, serve
from .test_restart import CountingStrategy

import pytest

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}


class SleepyStrategy(SequentialStrategy):
    """Sleeps before each frontier generation (a slow compile)."""

    def __init__(self, delay: float) -> None:
        self._delay = delay

    def expand_generation(self, engine, batch):
        time.sleep(self._delay)
        return super().expand_generation(engine, batch)


class FlakyStrategy(SequentialStrategy):
    """Fails the first N engine runs, then behaves."""

    def __init__(self, failures: int) -> None:
        self._failures = failures
        self._failed_runs = 0

    def expand_generation(self, engine, batch):
        if self._failed_runs < self._failures:
            self._failed_runs += 1
            raise RuntimeError("flaky compile backend")
        return super().expand_generation(engine, batch)


class GatedStrategy(SequentialStrategy):
    """Blocks the first generation until the test releases it."""

    def __init__(self, started: threading.Event, release: threading.Event) -> None:
        self._started = started
        self._release = release

    def expand_generation(self, engine, batch):
        self._started.set()
        assert self._release.wait(timeout=30.0)
        return super().expand_generation(engine, batch)


class TestDeadline:
    def test_unbounded_without_header(self):
        deadline = Deadline.from_header({})
        assert deadline.remaining() is None
        assert deadline.phase_budget(None) is None
        assert deadline.phase_budget(5.0) == 5.0

    def test_header_caps_the_phase_budget(self):
        deadline = Deadline.from_header({"x-deadline-ms": "50"})
        budget = deadline.phase_budget(30.0)
        assert budget is not None and budget <= 0.05
        # The header never widens a tighter phase budget.
        assert deadline.phase_budget(0.001) <= 0.001

    def test_unreadable_and_nonpositive_headers_are_ignored(self):
        for raw in ("nope", "-20", "0", None):
            deadline = Deadline.from_header({"x-deadline-ms": raw})
            assert deadline.remaining() is None

    def test_remaining_counts_down(self):
        deadline = Deadline(10.0)
        remaining = deadline.remaining()
        assert remaining is not None and 9.0 < remaining <= 10.0


class TestCancelScope:
    def test_cancel_expires_the_scope(self):
        scope = CancelScope()
        assert not scope.expired()
        scope.cancel()
        assert scope.cancelled and scope.expired()

    def test_past_deadline_expires_the_scope(self):
        scope = CancelScope(deadline=time.monotonic() - 0.001)
        assert scope.expired() and not scope.cancelled
        future = CancelScope(deadline=time.monotonic() + 60.0)
        assert not future.expired()


class TestCompileGate:
    def test_global_bound_counts_leaders_only(self):
        gate = CompileGate(ResilienceConfig(max_inflight_compiles=1))
        gate.admit("a", leader=True)
        gate.admit("a", leader=False)  # joiners ride the counted flight
        with pytest.raises(OverloadedError) as caught:
            gate.admit("b", leader=True)
        assert caught.value.scope == "global"
        assert caught.value.retry_after > 0
        assert gate.shed_global == 1
        gate.release("a", leader=True)
        gate.admit("b", leader=True)  # slot freed

    def test_per_tenant_queue_bound(self):
        gate = CompileGate(ResilienceConfig(queue_depth=2))
        gate.admit("a", leader=True)
        gate.admit("a", leader=False)
        with pytest.raises(OverloadedError) as caught:
            gate.admit("a", leader=False)
        assert caught.value.scope == "tenant"
        assert gate.shed_tenant == 1
        # Another tenant's queue is independent.
        gate.admit("b", leader=True)

    def test_release_is_balanced(self):
        gate = CompileGate(ResilienceConfig())
        gate.admit("a", leader=True)
        gate.release("a", leader=True)
        assert gate.inflight == 0
        assert gate.queued("a") == 0


class TestCircuitBreaker:
    def _tripped(self, config: ResilienceConfig) -> tuple[CircuitBreaker, str]:
        breaker = CircuitBreaker(config)
        for _ in range(config.breaker_threshold):
            breaker.check("digest")
            breaker.record_failure("digest", RuntimeError("boom"))
        return breaker, "digest"

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, digest = self._tripped(ResilienceConfig(breaker_threshold=2))
        assert breaker.state(digest) == "open"
        with pytest.raises(CircuitOpenError) as caught:
            breaker.check(digest)
        assert caught.value.retry_after > 0
        assert breaker.open_rejections == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(ResilienceConfig(breaker_threshold=2))
        breaker.record_failure("digest", RuntimeError("boom"))
        breaker.record_success("digest")
        breaker.record_failure("digest", RuntimeError("boom"))
        assert breaker.state("digest") == "closed"

    def test_half_open_admits_one_probe(self):
        config = ResilienceConfig(breaker_threshold=1, breaker_base_delay=0.01)
        breaker, digest = self._tripped(config)
        deadline = time.monotonic() + 2.0
        while breaker.state(digest) == "open" and time.monotonic() < deadline:
            time.sleep(0.005)
        assert breaker.state(digest) == "half-open"
        breaker.check(digest)  # the probe passes...
        with pytest.raises(CircuitOpenError):
            breaker.check(digest)  # ...concurrent callers do not
        breaker.record_success(digest)
        assert breaker.state(digest) == "closed"

    def test_interrupted_probe_surrenders_the_slot(self):
        config = ResilienceConfig(breaker_threshold=1, breaker_base_delay=0.01)
        breaker, digest = self._tripped(config)
        deadline = time.monotonic() + 2.0
        while breaker.state(digest) == "open" and time.monotonic() < deadline:
            time.sleep(0.005)
        breaker.check(digest)
        breaker.record_interrupt(digest)  # timeout: inconclusive
        breaker.check(digest)  # next caller may probe again

    def test_backoff_grows_per_trip_up_to_the_cap(self):
        config = ResilienceConfig(
            breaker_threshold=1, breaker_base_delay=1000.0, breaker_max_delay=1500.0
        )
        breaker = CircuitBreaker(config)
        breaker.record_failure("digest", RuntimeError("boom"))
        first = breaker._states["digest"].open_until - time.monotonic()
        breaker.record_failure("digest", RuntimeError("boom"))
        second = breaker._states["digest"].open_until - time.monotonic()
        assert first >= 1000.0
        # Doubling is capped at breaker_max_delay (+10% jitter).
        assert second <= 1500.0 * 1.1 + 1.0

    def test_jitter_is_seeded(self):
        config = ResilienceConfig(breaker_threshold=1, breaker_seed=7)
        one = CircuitBreaker(config)
        two = CircuitBreaker(config)
        one.record_failure("digest", RuntimeError("boom"))
        two.record_failure("digest", RuntimeError("boom"))
        gap = abs(
            (one._states["digest"].open_until - time.monotonic())
            - (two._states["digest"].open_until - time.monotonic())
        )
        assert gap < 0.05


class TestCompileTimeout:
    def _checkpoints(self, tmp_path):
        directory = tmp_path / CHECKPOINT_DIRNAME
        return sorted(directory.glob("*.json")) if directory.exists() else []

    def test_timed_out_compile_returns_504_and_resumes(self, tmp_path):
        """The PR 8 acceptance path: 504 → checkpoint → cheaper retry."""

        async def body():
            # The Person query needs 3 generations; at 0.15s each, the
            # 0.25s budget lets exactly one finish (and checkpoint)
            # before the deadline fires.
            slow = ServingApp(
                cache=str(tmp_path),
                strategy_factory=lambda: SleepyStrategy(0.15),
                resilience=ResilienceConfig(compile_timeout=0.25),
            )
            try:
                await register(slow, "acme")
                response = await slow.request("POST", "/answer", QUERY)
                assert response.status == 504, response.payload
                assert response.payload["error"]["code"] == "timeout"
                assert "resume" in response.payload["error"]["message"]
            finally:
                await slow.aclose()
            assert self._checkpoints(tmp_path), "504 must leave a checkpoint"

            # A fresh compile of the same query costs this many generations...
            fresh_counter = CountingStrategy()
            fresh = ServingApp(strategy_factory=lambda: fresh_counter)
            try:
                await register(fresh, "acme")
                reference = await fresh.request("POST", "/answer", QUERY)
                assert reference.ok
            finally:
                await fresh.aclose()

            # ...and the retry over the same cache resumes from the
            # checkpoint: same answers, strictly fewer generations.
            resumed_counter = CountingStrategy()
            resumed = ServingApp(
                cache=str(tmp_path),
                warm_limit=0,
                strategy_factory=lambda: resumed_counter,
            )
            try:
                await register(resumed, "acme")
                retry = await resumed.request("POST", "/answer", QUERY)
                assert retry.ok, retry.payload
                assert retry.payload["answers"] == reference.payload["answers"]
                assert 0 < resumed_counter.generations < fresh_counter.generations
            finally:
                await resumed.aclose()

        serve(body)

    def test_deadline_header_tightens_the_budget(self):
        async def body():
            app = ServingApp(strategy_factory=lambda: SleepyStrategy(0.2))
            try:
                await register(app, "acme")
                response = await app.request(
                    "POST", "/answer", QUERY, headers={"x-deadline-ms": "80"}
                )
                assert response.status == 504
                assert response.payload["error"]["code"] == "timeout"
            finally:
                await app.aclose()

        serve(body)

    def test_answer_timeout_is_independent_of_compile(self):
        async def body():
            app = ServingApp(resilience=ResilienceConfig(answer_timeout=30.0))
            try:
                await register(app, "acme")
                response = await app.request("POST", "/answer", QUERY)
                assert response.ok
            finally:
                await app.aclose()

        serve(body)


class TestLoadShedding:
    def test_global_bound_sheds_new_leaders_but_not_warm_requests(self):
        async def body():
            started, release = threading.Event(), threading.Event()
            app = ServingApp(
                strategy_factory=lambda: GatedStrategy(started, release),
                resilience=ResilienceConfig(
                    max_inflight_compiles=1, shed_retry_after=0.25
                ),
            )
            try:
                # Two tenants with different theories = two artifact sets,
                # so their compiles occupy distinct flights.
                await register(app, "acme")
                await register(app, "other", tbox="Employee [= Person")

                # Wedge acme's compile open: it holds the one global slot.
                wedged = asyncio.ensure_future(
                    app.request("POST", "/answer", QUERY)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: started.wait(timeout=10.0)
                )

                # A cold leader on the other tenant is shed immediately...
                shed = await app.request(
                    "POST", "/answer", {"tenant": "other", "query": "q(A) :- Person(A)"}
                )
                assert shed.status == 503, shed.payload
                assert shed.payload["error"]["code"] == "overloaded"
                assert shed.payload["error"]["retry_after"] > 0

                release.set()
                wedge_response = await wedged
                assert wedge_response.ok

                # ...and succeeds once the slot frees up.
                retried = await app.request(
                    "POST", "/answer", {"tenant": "other", "query": "q(A) :- Person(A)"}
                )
                assert retried.ok
                stats = await app.request("GET", "/stats")
                assert stats.payload["resilience"]["gate"]["shed_global"] == 1
            finally:
                release.set()
                await app.aclose()

        serve(body)

    def test_tenant_queue_bound_sheds_excess_joiners(self):
        async def body():
            started, release = threading.Event(), threading.Event()
            app = ServingApp(
                strategy_factory=lambda: GatedStrategy(started, release),
                resilience=ResilienceConfig(queue_depth=2),
            )
            try:
                await register(app, "acme")
                leader = asyncio.ensure_future(
                    app.request("POST", "/answer", QUERY)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: started.wait(timeout=10.0)
                )
                followers = [
                    asyncio.ensure_future(app.request("POST", "/answer", QUERY))
                    for _ in range(3)
                ]
                await asyncio.sleep(0.05)
                # Queue depth 2 = leader + one joiner; the other two shed.
                done = [f for f in followers if f.done()]
                assert len(done) == 2
                for future in done:
                    assert future.result().status == 503
                    assert future.result().payload["error"]["code"] == "overloaded"

                release.set()
                responses = [await leader] + [await f for f in followers]
                assert sum(1 for r in responses if r.ok) == 2
            finally:
                release.set()
                await app.aclose()

        serve(body)

    def test_warm_requests_never_touch_the_gate(self):
        async def body():
            app = ServingApp(
                resilience=ResilienceConfig(max_inflight_compiles=1, queue_depth=1)
            )
            try:
                await register(app, "acme")
                first = await app.request("POST", "/answer", QUERY)
                assert first.ok
                # Saturate nothing: warm answers bypass admission entirely.
                for _ in range(5):
                    warm = await app.request("POST", "/answer", QUERY)
                    assert warm.ok and warm.payload["source"] == "memory"
                stats = await app.request("GET", "/stats")
                gate = stats.payload["resilience"]["gate"]
                assert gate["shed_global"] == 0 and gate["shed_tenant"] == 0
            finally:
                await app.aclose()

        serve(body)


class TestBreakerIntegration:
    def test_deterministic_failures_trip_probe_and_recover(self):
        async def body():
            app = ServingApp(
                strategy_factory=lambda: FlakyStrategy(failures=2),
                resilience=ResilienceConfig(
                    breaker_threshold=2,
                    breaker_base_delay=0.05,
                    breaker_max_delay=0.2,
                ),
            )
            try:
                await register(app, "acme")
                for _ in range(2):
                    failed = await app.request("POST", "/answer", QUERY)
                    assert failed.status == 500
                    assert failed.payload["error"]["code"] == "compile-failed"

                # The circuit is open now: rejected without an engine run.
                rejected = await app.request("POST", "/answer", QUERY)
                assert rejected.status == 503, rejected.payload
                assert rejected.payload["error"]["code"] == "circuit-open"
                assert rejected.payload["error"]["retry_after"] >= 0

                # After the backoff window a half-open probe runs for real;
                # the strategy has recovered, so it closes the circuit.
                await asyncio.sleep(0.12)
                recovered = await app.request("POST", "/answer", QUERY)
                assert recovered.ok, recovered.payload

                warm = await app.request("POST", "/answer", QUERY)
                assert warm.payload["source"] == "memory"
                stats = await app.request("GET", "/stats")
                breaker = stats.payload["resilience"]["breaker"]
                assert breaker["rejections"] >= 1
                assert breaker["open"] == 0
            finally:
                await app.aclose()

        serve(body)

    def test_stats_exposes_the_resilience_section(self, app):
        async def body():
            stats = await app.request("GET", "/stats")
            section = stats.payload["resilience"]
            assert section["timeouts"]["compile"] == 30.0
            assert section["timeouts"]["answer"] == 10.0
            assert section["gate"]["max_inflight_compiles"] == 8
            assert section["breaker"]["threshold"] == 3

        serve(body)
