"""Standing-query endpoints: subscribe, poll, unsubscribe, prepare-batch.

In-process contract tests drive :class:`ServingApp` directly; the final
class goes over a real socket (query-string cursor included) through
:class:`ServingServer`/:class:`ServingClient`.
"""

from repro.serving import ServingApp, ServingClient, ServingServer

from .conftest import register, serve

PERSON_QUERY = "q(A) :- Person(A)"


async def subscribe(app, tenant, query=PERSON_QUERY):
    response = await app.request(
        "POST", f"/tenants/{tenant}/subscribe", {"query": query}
    )
    assert response.status == 201, response.payload
    return response.payload


async def poll(app, tenant, cursor):
    response = await app.request(
        "GET", f"/tenants/{tenant}/changes", {"cursor": cursor}
    )
    assert response.status == 200, response.payload
    return response.payload


class TestSubscribe:
    def test_subscribe_returns_cursor_and_snapshot(self, app):
        async def body():
            await register(app, "acme")
            payload = await subscribe(app, "acme")
            assert payload["cursor"].startswith("sub-")
            assert payload["mode"] == "full"
            # The initial snapshot is the full current answer set, in the
            # same deterministic encoding /answer uses.
            answer = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": PERSON_QUERY}
            )
            assert payload["answers"] == answer.payload["answers"]
            assert payload["count"] == answer.payload["count"]

        serve(body)

    def test_quiet_poll_is_an_empty_noop_delta(self, app):
        async def body():
            await register(app, "acme")
            cursor = (await subscribe(app, "acme"))["cursor"]
            delta = await poll(app, "acme", cursor)
            assert delta["added"] == [] and delta["removed"] == []
            assert delta["mode"] == "noop"
            assert delta["polls"] == 1

        serve(body)

    def test_unknown_tenant_is_404(self, app):
        async def body():
            response = await app.request(
                "POST", "/tenants/ghost/subscribe", {"query": PERSON_QUERY}
            )
            assert response.status == 404

        serve(body)

    def test_wrong_method_is_405(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request("GET", "/tenants/acme/subscribe", None)
            assert response.status == 405
            response = await app.request(
                "POST", "/tenants/acme/changes", {"cursor": "sub-000001"}
            )
            assert response.status == 405

        serve(body)


class TestChanges:
    def test_mutations_surface_as_answer_deltas(self, app):
        async def body():
            await register(app, "acme")
            cursor = (await subscribe(app, "acme"))["cursor"]
            response = await app.request(
                "POST",
                "/data",
                {
                    "tenant": "acme",
                    "add": [["Grad", ["zoe"]]],
                    "remove": [["Student", ["alice"]]],
                },
            )
            assert response.status == 200, response.payload
            delta = await poll(app, "acme", cursor)
            assert delta["added"] == [["zoe"]]
            assert delta["removed"] == [["alice"]]
            assert delta["mode"] == "incremental"
            # The cursor has caught up: /answer agrees with snapshot+delta.
            answer = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": PERSON_QUERY}
            )
            assert delta["count"] == answer.payload["count"]
            quiet = await poll(app, "acme", cursor)
            assert quiet["added"] == [] and quiet["removed"] == []

        serve(body)

    def test_unknown_cursor_is_404(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "GET", "/tenants/acme/changes", {"cursor": "sub-999999"}
            )
            assert response.status == 404
            assert response.payload["error"]["code"] == "unknown-cursor"

        serve(body)

    def test_cursor_is_required_and_must_be_a_string(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request("GET", "/tenants/acme/changes", {})
            assert response.status == 400
            response = await app.request(
                "GET", "/tenants/acme/changes", {"cursor": 7}
            )
            assert response.status == 400

        serve(body)

    def test_subscription_survives_a_theory_update(self, app):
        async def body():
            await register(app, "acme")
            cursor = (await subscribe(app, "acme"))["cursor"]
            # Dropping the Grad [= Student axiom removes dana from the
            # Person closure; the next poll full-refreshes against the
            # new rewriting and reports exactly that.
            response = await app.request(
                "POST",
                "/tenants/acme/theory",
                {"tbox": "Student [= Person\nexists attends [= Student"},
            )
            assert response.status == 200, response.payload
            delta = await poll(app, "acme", cursor)
            assert delta["mode"] == "full"
            assert delta["removed"] == [["dana"]]
            assert delta["added"] == []

        serve(body)

    def test_unsubscribe_drops_the_cursor(self, app):
        async def body():
            await register(app, "acme")
            cursor = (await subscribe(app, "acme"))["cursor"]
            response = await app.request(
                "POST", "/tenants/acme/unsubscribe", {"cursor": cursor}
            )
            assert response.status == 200
            assert response.payload["unsubscribed"] is True
            response = await app.request(
                "GET", "/tenants/acme/changes", {"cursor": cursor}
            )
            assert response.status == 404
            response = await app.request(
                "POST", "/tenants/acme/unsubscribe", {"cursor": cursor}
            )
            assert response.status == 404

        serve(body)

    def test_stats_expose_the_subscription_pool(self, app):
        async def body():
            await register(app, "acme")
            cursor = (await subscribe(app, "acme"))["cursor"]
            await poll(app, "acme", cursor)
            stats = await app.request("GET", "/stats", None)
            block = stats.payload["tenants"]["acme"]["subscriptions"]
            assert block == {"active": 1, "created": 1, "polls": 1}

        serve(body)


class TestPrepareBatch:
    def test_batch_prepares_every_query(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST",
                "/tenants/acme/prepare-batch",
                {"queries": [PERSON_QUERY, {"query": "q(A) :- Course(A)"}]},
            )
            assert response.status == 200, response.payload
            assert response.payload["prepared"] == 2
            assert len(response.payload["results"]) == 2
            for entry in response.payload["results"]:
                assert entry["cqs"] >= 1
            # A repeated batch is served entirely from the caches.
            again = await app.request(
                "POST",
                "/tenants/acme/prepare-batch",
                {"queries": [PERSON_QUERY, "q(A) :- Course(A)"]},
            )
            assert again.status == 200
            assert all(
                entry["source"] != "computed"
                for entry in again.payload["results"]
            ), again.payload

        serve(body)

    def test_queries_must_be_a_non_empty_list(self, app):
        async def body():
            await register(app, "acme")
            for bad in ({}, {"queries": []}, {"queries": "q(A) :- Person(A)"}):
                response = await app.request(
                    "POST", "/tenants/acme/prepare-batch", bad
                )
                assert response.status == 400, response.payload

        serve(body)


class TestOverTheSocket:
    def test_subscribe_mutate_poll_over_a_real_connection(self):
        async def body():
            app = ServingApp()
            server = ServingServer(app)
            await server.start()
            client = ServingClient("127.0.0.1", server.port)
            try:
                await register(app, "acme")
                opened = await client.request(
                    "POST",
                    "/tenants/acme/subscribe",
                    {"query": PERSON_QUERY},
                )
                assert opened.status == 201, opened.payload
                cursor = opened.payload["cursor"]
                mutated = await client.request(
                    "POST",
                    "/data",
                    {"tenant": "acme", "add": [["Student", ["frank"]]]},
                )
                assert mutated.status == 200
                # The cursor rides the query string — no request body.
                delta = await client.request(
                    "GET", f"/tenants/acme/changes?cursor={cursor}"
                )
                assert delta.status == 200, delta.payload
                assert delta.payload["added"] == [["frank"]]
                assert delta.payload["removed"] == []
                assert delta.payload["mode"] == "incremental"
                closed = await client.request(
                    "POST", "/tenants/acme/unsubscribe", {"cursor": cursor}
                )
                assert closed.status == 200
            finally:
                await client.aclose()
                await server.stop()

        serve(body)
