"""Graceful live theory updates: ``POST /tenants/{name}/theory``.

PR 8's zero-downtime contract: swapping a tenant's ontology epochs the
shared artifact set — in-flight requests finish on the artifacts they
started with, new requests compile against the new fingerprint, the
facts and the database epoch counter survive, and the old artifact set
is refcount-drained and closed once its last pinned epoch is released.
The acceptance bar is a swap under concurrent load with **zero 500s**.
"""

from __future__ import annotations

import asyncio

from repro.serving import ServingApp

from .conftest import FACTS, TBOX, register, serve

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}

#: A strictly smaller ontology: only named Students remain Persons, so
#: the Person answers shrink from {alice, bob, dana} to {alice}.
SHRUNK_TBOX = "Student [= Person"


class TestTheoryUpdate:
    def test_update_swaps_answers_and_keeps_facts(self, app):
        async def body():
            await register(app, "acme")
            before = await app.request("POST", "/answer", QUERY)
            assert sorted(v for [v] in before.payload["answers"]) == [
                "alice",
                "bob",
                "dana",
            ]
            old_fingerprint = app.registry.get("acme").fingerprint

            updated = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": SHRUNK_TBOX}
            )
            assert updated.status == 200, updated.payload
            assert updated.payload["changed"] is True
            assert updated.payload["fingerprint"] != old_fingerprint
            assert updated.payload["facts"] == len(FACTS)
            assert updated.payload["theory_updates"] == 1

            after = await app.request("POST", "/answer", QUERY)
            assert after.ok, after.payload
            assert after.payload["answers"] == [["alice"]]

        serve(body)

    def test_noop_update_is_reported_unchanged(self, app):
        async def body():
            await register(app, "acme")
            first = app.registry.get("acme").artifacts
            updated = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": TBOX}
            )
            assert updated.status == 200
            assert updated.payload["changed"] is False
            assert app.registry.get("acme").artifacts is first

        serve(body)

    def test_unknown_tenant_is_404(self, app):
        async def body():
            response = await app.request(
                "POST", "/tenants/ghost/theory", {"tbox": TBOX}
            )
            assert response.status == 404
            assert response.payload["error"]["code"] == "unknown-tenant"

        serve(body)

    def test_wrong_method_is_405(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request("GET", "/tenants/acme/theory")
            assert response.status == 405
            assert response.payload["error"]["code"] == "method-not-allowed"

        serve(body)

    def test_bad_theory_is_400_and_leaves_the_tenant_untouched(self, app):
        async def body():
            await register(app, "acme")
            before = app.registry.get("acme").fingerprint
            response = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": "not ( valid"}
            )
            assert response.status == 400
            assert app.registry.get("acme").fingerprint == before
            still = await app.request("POST", "/answer", QUERY)
            assert still.ok

        serve(body)


class TestEpochLifecycle:
    def test_old_artifacts_close_once_drained(self, app):
        async def body():
            await register(app, "acme")
            warm = await app.request("POST", "/answer", QUERY)
            assert warm.ok
            old = app.registry.get("acme").artifacts

            updated = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": SHRUNK_TBOX}
            )
            assert updated.ok
            # Nothing pinned the old epoch, so the swap drained it.
            assert old._closed
            assert app.registry.get("acme").artifacts is not old

        serve(body)

    def test_pinned_epoch_keeps_old_artifacts_alive(self, app):
        async def body():
            await register(app, "acme")
            tenant = app.registry.get("acme")
            pinned = tenant.retain_epoch()
            old = pinned.artifacts

            updated = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": SHRUNK_TBOX}
            )
            assert updated.ok
            # The in-flight request still owns the old artifact set...
            assert not old._closed
            assert tenant.artifacts is not old
            # ...and releasing the pin drains and closes it.
            tenant.release_epoch(pinned)
            assert old._closed

        serve(body)

    def test_shared_set_survives_while_a_sibling_tenant_uses_it(self, app):
        async def body():
            await register(app, "acme")
            second = await register(app, "beta")
            assert second["shared_artifacts"] is True
            shared = app.registry.get("acme").artifacts
            assert app.registry.get("beta").artifacts is shared

            updated = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": SHRUNK_TBOX}
            )
            assert updated.ok
            # beta still holds a membership: the old set must stay open.
            assert not shared._closed
            beta = await app.request(
                "POST", "/answer", {"tenant": "beta", "query": "q(A) :- Person(A)"}
            )
            assert beta.ok
            assert sorted(v for [v] in beta.payload["answers"]) == [
                "alice",
                "bob",
                "dana",
            ]

        serve(body)


class TestUpdateUnderLoad:
    def test_swap_under_concurrent_traffic_yields_zero_500s(self, app):
        """The PR 8 acceptance bar for live updates."""

        async def body():
            await register(app, "acme")
            warm = await app.request("POST", "/answer", QUERY)
            assert warm.ok

            async def traffic():
                responses = []
                for _ in range(60):
                    responses.append(await app.request("POST", "/answer", QUERY))
                    await asyncio.sleep(0.001)
                return responses

            load = asyncio.ensure_future(traffic())
            await asyncio.sleep(0.01)
            flip = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": SHRUNK_TBOX}
            )
            assert flip.ok, flip.payload
            await asyncio.sleep(0.01)
            flop = await app.request(
                "POST", "/tenants/acme/theory", {"tbox": TBOX}
            )
            assert flop.ok, flop.payload

            responses = await load
            assert all(r.status < 500 for r in responses), [
                r.payload for r in responses if r.status >= 500
            ]
            assert all(r.ok for r in responses)
            # Every response is one of the two theories' answer sets —
            # never a torn mixture.
            legal = ([["alice"]], [["alice"], ["bob"], ["dana"]])
            for response in responses:
                assert response.payload["answers"] in legal

        serve(body)
