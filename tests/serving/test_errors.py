"""Classified error contracts: every failure is a machine-readable code.

PR 8 requires clients to be able to tell a permanently broken query
(``compile-failed``), a transient backend hiccup (``backend-error``), a
budget problem (``timeout``) and a genuine bug (``internal``) apart
without string matching.  Each classified code is provoked for real here,
and the retryable ones are checked for a ``retry_after`` hint in the
body, which the HTTP layer mirrors as a ``Retry-After`` header.
"""

from __future__ import annotations

import sqlite3

from repro.scheduling import SequentialStrategy
from repro.serving import FaultPlan, ServingApp
from repro.serving.app import ServingError, ServingResponse
from repro.serving.http import _encode_response
from repro.serving.resilience import ResilienceConfig

from .conftest import register, serve

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}


class BrokenStrategy(SequentialStrategy):
    """Deterministically fails every engine run."""

    def expand_generation(self, engine, batch):
        raise RuntimeError("deterministic compile breakage")


class TestClassifiedCodes:
    def test_compile_failure_is_500_compile_failed(self):
        async def body():
            app = ServingApp(strategy_factory=BrokenStrategy)
            try:
                await register(app, "acme")
                response = await app.request("POST", "/answer", QUERY)
                assert response.status == 500
                assert response.payload["error"]["code"] == "compile-failed"
                assert "RuntimeError" in response.payload["error"]["message"]
            finally:
                await app.aclose()

        serve(body)

    def test_backend_fault_is_503_backend_error_with_retry_hint(self):
        async def body():
            plan = FaultPlan(seed=0, backend_faults=1)
            app = ServingApp(fault_plan=plan)
            try:
                await register(app, "acme")
                plan.arm()
                failed = await app.request("POST", "/answer", QUERY)
                assert failed.status == 503, failed.payload
                assert failed.payload["error"]["code"] == "backend-error"
                assert "OperationalError" in failed.payload["error"]["message"]
                assert failed.payload["error"]["retry_after"] > 0
                # The fault budget is spent: the retry succeeds.
                retried = await app.request("POST", "/answer", QUERY)
                assert retried.ok
            finally:
                plan.disarm()
                await app.aclose()

        serve(body)

    def test_unclassified_exception_is_500_internal(self, app):
        async def body():
            await register(app, "acme")
            tenant = app.registry.get("acme")

            def explode(*args, **kwargs):
                raise ArithmeticError("unexpected bug")

            tenant.answer_blocking = explode
            response = await app.request("POST", "/answer", QUERY)
            assert response.status == 500
            assert response.payload["error"]["code"] == "internal"
            assert "ArithmeticError" in response.payload["error"]["message"]

        serve(body)

    def test_sqlite_errors_from_handlers_map_to_backend_error(self, app):
        async def body():
            await register(app, "acme")
            tenant = app.registry.get("acme")

            def explode(*args, **kwargs):
                raise sqlite3.OperationalError("database is locked")

            tenant.answer_blocking = explode
            response = await app.request("POST", "/answer", QUERY)
            assert response.status == 503
            assert response.payload["error"]["code"] == "backend-error"

        serve(body)

    def test_timeout_code_on_answer_budget(self, app):
        async def body():
            await register(app, "acme")
            # Warm the compile first so only the answer phase runs under
            # the (absurd) header deadline; the compile is a dict probe.
            warm = await app.request("POST", "/answer", QUERY)
            assert warm.ok
            tenant = app.registry.get("acme")

            def stall(*args, **kwargs):
                import time

                time.sleep(0.5)
                raise AssertionError("unreachable")

            tenant.answer_blocking = stall
            response = await app.request(
                "POST", "/answer", QUERY, headers={"x-deadline-ms": "50"}
            )
            assert response.status == 504
            assert response.payload["error"]["code"] == "timeout"

        serve(body)


class TestRetryAfterEncoding:
    def test_retryable_body_mirrors_a_retry_after_header(self):
        error = ServingError(503, "overloaded", "busy", retry_after=1.25)
        raw = _encode_response(error.response(), keep_alive=True)
        head = raw.split(b"\r\n\r\n", 1)[0].decode("ascii")
        assert "Retry-After: 1.250" in head
        assert "503 Service Unavailable" in head

    def test_non_retryable_errors_have_no_retry_after_header(self):
        error = ServingError(404, "unknown-tenant", "no such tenant")
        raw = _encode_response(error.response(), keep_alive=True)
        assert b"Retry-After" not in raw

    def test_retry_after_lands_in_the_error_body(self):
        response = ServingError(
            503, "circuit-open", "open", retry_after=0.5
        ).response()
        assert response.payload["error"]["retry_after"] == 0.5
        plain = ServingError(400, "bad-request", "nope").response()
        assert "retry_after" not in plain.payload["error"]

    def test_504_has_a_reason_phrase(self):
        raw = _encode_response(
            ServingResponse(504, {"error": {"code": "timeout", "message": "m"}}),
            keep_alive=False,
        )
        assert raw.startswith(b"HTTP/1.1 504 Gateway Timeout")
