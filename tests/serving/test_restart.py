"""Graceful shutdown and restart-warm recovery.

A service restarted over the same ``--cache`` directory must come back
warm: previously compiled rewritings are preloaded from the persistent
:class:`~repro.cache.store.RewritingStore` (or served from it on first
touch), and a compile killed mid-flight resumes from its frontier
checkpoint instead of restarting from scratch — the serving-tier version
of the kill-and-resume contract in ``tests/cache/test_checkpoint.py``.
"""

import pytest

from repro.scheduling import SequentialStrategy
from repro.serving import ServingApp
from repro.serving.tenants import CHECKPOINT_DIRNAME

from .conftest import register, serve

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}


class SimulatedKill(Exception):
    """Stands in for SIGKILL: aborts the compile between generations."""


class KillingStrategy(SequentialStrategy):
    """Dies after N completed frontier generations."""

    def __init__(self, after_generations: int) -> None:
        self._after = after_generations
        self._count = 0

    def expand_generation(self, engine, batch):
        self._count += 1
        if self._count > self._after:
            raise SimulatedKill()
        return super().expand_generation(engine, batch)


class CountingStrategy(SequentialStrategy):
    """Counts frontier generations (to prove a resume skipped some)."""

    def __init__(self) -> None:
        self.generations = 0

    def expand_generation(self, engine, batch):
        self.generations += 1
        return super().expand_generation(engine, batch)


class TestRestartWarm:
    def test_restart_preloads_rewritings_from_the_store(self, tmp_path):
        async def body():
            first = ServingApp(cache=str(tmp_path))
            await register(first, "acme")
            cold = await first.request("POST", "/answer", QUERY)
            assert cold.payload["source"] == "engine"
            reference = cold.payload["answers"]
            await first.aclose()

            second = ServingApp(cache=str(tmp_path))
            try:
                payload = await register(second, "acme")
                assert payload["warmed_rewritings"] >= 1
                assert payload["warmed_prepared"] >= 1
                warm = await second.request("POST", "/answer", QUERY)
                assert warm.payload["source"] == "memory"
                assert warm.payload["answers"] == reference
                assert second.registry.get("acme").artifacts.compiles == 0
            finally:
                await second.aclose()

        serve(body)

    def test_store_serves_first_touch_when_preloading_is_off(self, tmp_path):
        async def body():
            first = ServingApp(cache=str(tmp_path))
            await register(first, "acme")
            await first.request("POST", "/answer", QUERY)
            await first.aclose()

            second = ServingApp(cache=str(tmp_path), warm_limit=0)
            try:
                payload = await register(second, "acme")
                assert payload["warmed_rewritings"] == 0
                served = await second.request("POST", "/answer", QUERY)
                assert served.payload["source"] == "store"
                assert second.registry.get("acme").artifacts.compiles == 0
            finally:
                await second.aclose()

        serve(body)

    def test_unrelated_fingerprints_do_not_cross_warm(self, tmp_path):
        async def body():
            first = ServingApp(cache=str(tmp_path))
            await register(first, "acme")
            await first.request("POST", "/answer", QUERY)
            await first.aclose()

            second = ServingApp(cache=str(tmp_path))
            try:
                response = await second.request(
                    "POST",
                    "/register-theory",
                    {"tenant": "other", "tbox": "Employee [= Person"},
                )
                assert response.status == 201
                # Different theory -> different fingerprint -> nothing of
                # acme's store slice is preloaded.
                assert response.payload["warmed_rewritings"] == 0
            finally:
                await second.aclose()

        serve(body)


class TestKillAndResume:
    def _checkpoints(self, tmp_path):
        directory = tmp_path / CHECKPOINT_DIRNAME
        return sorted(directory.glob("*.json")) if directory.exists() else []

    def test_killed_compile_leaves_a_checkpoint_and_returns_500(self, tmp_path):
        async def body():
            app = ServingApp(
                cache=str(tmp_path),
                strategy_factory=lambda: KillingStrategy(1),
            )
            try:
                await register(app, "acme")
                response = await app.request("POST", "/answer", QUERY)
                assert response.status == 500
                assert response.payload["error"]["code"] == "compile-failed"
                assert "SimulatedKill" in response.payload["error"]["message"]
            finally:
                await app.aclose()
            assert len(self._checkpoints(tmp_path)) == 1

        serve(body)

    def test_restarted_service_resumes_the_killed_compile(self, tmp_path):
        async def body():
            # Run 1: die after one frontier generation, mid-compile.
            crashed = ServingApp(
                cache=str(tmp_path),
                strategy_factory=lambda: KillingStrategy(1),
            )
            await register(crashed, "acme")
            assert (await crashed.request("POST", "/answer", QUERY)).status == 500
            await crashed.aclose()
            assert len(self._checkpoints(tmp_path)) == 1

            # Reference: generations of an uninterrupted compile.
            fresh_counter = CountingStrategy()
            fresh = ServingApp(strategy_factory=lambda: fresh_counter)
            await register(fresh, "acme")
            reference = await fresh.request("POST", "/answer", QUERY)
            assert reference.status == 200
            await fresh.aclose()

            # Run 2: same cache directory, healthy strategy.  The compile
            # must resume past the checkpointed generation, produce the
            # same answers, and consume the checkpoint file.
            resumed_counter = CountingStrategy()
            recovered = ServingApp(
                cache=str(tmp_path), strategy_factory=lambda: resumed_counter
            )
            try:
                await register(recovered, "acme")
                response = await recovered.request("POST", "/answer", QUERY)
                assert response.status == 200
                assert response.payload["answers"] == reference.payload["answers"]
                assert resumed_counter.generations < fresh_counter.generations
                assert self._checkpoints(tmp_path) == []
            finally:
                await recovered.aclose()

        serve(body)

    def test_completed_compiles_leave_no_checkpoints_behind(self, tmp_path):
        async def body():
            app = ServingApp(cache=str(tmp_path))
            try:
                await register(app, "acme")
                assert (await app.request("POST", "/answer", QUERY)).status == 200
            finally:
                await app.aclose()
            assert self._checkpoints(tmp_path) == []

        serve(body)

    def test_service_stays_up_after_a_failed_compile(self, tmp_path):
        """One tenant's compile crash is that request's 500, not an outage."""

        async def body():
            strategies = iter([KillingStrategy(1)])

            def factory():
                try:
                    return next(strategies)
                except StopIteration:
                    return None

            app = ServingApp(cache=str(tmp_path), strategy_factory=factory)
            try:
                await register(app, "acme")
                assert (await app.request("POST", "/answer", QUERY)).status == 500
                # The service keeps serving: health, stats, registrations.
                assert (await app.request("GET", "/healthz")).status == 200
                response = await app.request(
                    "POST",
                    "/register-theory",
                    {"tenant": "beta", "tbox": "Employee [= Person"},
                )
                assert response.status == 201
                answer = await app.request(
                    "POST",
                    "/answer",
                    {"tenant": "beta", "query": "q(A) :- Person(A)"},
                )
                assert answer.status == 200
            finally:
                await app.aclose()

        serve(body)
