"""ServingClient retry behaviour: 503s, Retry-After, seeded backoff.

The client-side half of the resilience story: retryable 503s (shed,
open circuit, backend hiccups) are retried under a budget, honoring the
server's ``Retry-After`` hint, with a seeded jittered exponential
backoff when the hint is absent — so a retry storm from N clients does
not resynchronise into the thundering herd shedding exists to break.
"""

from __future__ import annotations

import time

from repro.serving import FaultPlan, ServingApp, ServingClient, ServingServer

from .conftest import register, serve

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}


class TestRetrySchedule:
    def test_retry_after_hint_wins_and_is_capped(self):
        client = ServingClient("127.0.0.1", 1, backoff=0.05, max_backoff=0.2)
        assert client._delay(0, retry_after=0.1) == 0.1
        assert client._delay(5, retry_after=99.0) == 0.2  # capped
        assert client._delay(0, retry_after=-1.0) == 0.0  # clamped

    def test_jittered_backoff_doubles_and_is_seeded(self):
        one = ServingClient("127.0.0.1", 1, backoff=0.05, max_backoff=10.0, seed=3)
        two = ServingClient("127.0.0.1", 1, backoff=0.05, max_backoff=10.0, seed=3)
        delays_one = [one._delay(attempt, None) for attempt in range(4)]
        delays_two = [two._delay(attempt, None) for attempt in range(4)]
        assert delays_one == delays_two  # same seed, same schedule
        for attempt, delay in enumerate(delays_one):
            # jitter keeps each delay within [0.5, 1.0] x the exp step
            step = 0.05 * (2**attempt)
            assert 0.5 * step <= delay <= step
        different = ServingClient("127.0.0.1", 1, backoff=0.05, seed=4)
        assert [different._delay(a, None) for a in range(4)] != delays_one


class TestRetryIntegration:
    def test_transient_503_is_retried_to_success(self):
        async def body():
            plan = FaultPlan(seed=0, backend_faults=1)
            app = ServingApp(fault_plan=plan)
            server = ServingServer(app)
            await server.start()
            client = ServingClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            )
            try:
                await register(app, "acme")
                plan.arm()
                response = await client.request("POST", "/answer", QUERY)
                assert response.status == 200, response.payload
                assert client.retried >= 1
            finally:
                plan.disarm()
                await client.aclose()
                await server.stop()
                await app.aclose()

        serve(body)

    def test_retry_honors_the_servers_retry_after_hint(self):
        async def body():
            from repro.serving.resilience import ResilienceConfig

            plan = FaultPlan(seed=0, backend_faults=1)
            app = ServingApp(
                fault_plan=plan,
                resilience=ResilienceConfig(shed_retry_after=0.15),
            )
            server = ServingServer(app)
            await server.start()
            client = ServingClient(
                "127.0.0.1", server.port, retries=2, backoff=0.001
            )
            try:
                await register(app, "acme")
                warm = await client.request("POST", "/answer", QUERY)
                assert warm.status == 200
                plan.arm()
                started = time.perf_counter()
                response = await client.request("POST", "/answer", QUERY)
                elapsed = time.perf_counter() - started
                assert response.status == 200
                # The one retry waited out the 0.15s Retry-After hint
                # rather than its own ~1ms backoff.
                assert elapsed >= 0.14, elapsed
            finally:
                plan.disarm()
                await client.aclose()
                await server.stop()
                await app.aclose()

        serve(body)

    def test_retries_zero_fails_fast(self):
        async def body():
            plan = FaultPlan(seed=0, backend_faults=1)
            app = ServingApp(fault_plan=plan)
            server = ServingServer(app)
            await server.start()
            client = ServingClient("127.0.0.1", server.port, retries=0)
            try:
                await register(app, "acme")
                plan.arm()
                response = await client.request("POST", "/answer", QUERY)
                assert response.status == 503
                assert response.payload["error"]["code"] == "backend-error"
                assert client.retried == 0
            finally:
                plan.disarm()
                await client.aclose()
                await server.stop()
                await app.aclose()

        serve(body)
