"""Endpoint contracts: statuses, payload shapes and structured errors."""

import json

import pytest

from repro.cache.serialization import tgd_to_json
from repro.serving import ServingApp
from repro.workloads import get_workload

from .conftest import FACTS, TBOX, register, serve


class TestRegisterTheory:
    def test_tbox_registration(self, app):
        async def body():
            payload = await register(app, "acme")
            assert payload["tenant"] == "acme"
            assert len(payload["fingerprint"]) == 64
            assert payload["shared_artifacts"] is False
            assert payload["tgds"] >= 4
            assert payload["facts"] == len(FACTS)

        serve(body)

    def test_workload_registration(self, app):
        async def body():
            response = await app.request(
                "POST", "/register-theory", {"tenant": "acme", "workload": "S"}
            )
            assert response.status == 201
            assert response.payload["tgds"] == len(get_workload("S").theory.tgds)

        serve(body)

    def test_json_tgd_registration(self, app):
        async def body():
            rules = [tgd_to_json(rule) for rule in get_workload("P5").theory.tgds]
            response = await app.request(
                "POST", "/register-theory", {"tenant": "acme", "tgds": rules}
            )
            assert response.status == 201
            assert response.payload["tgds"] == len(rules)

        serve(body)

    def test_duplicate_tenant_is_409(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST", "/register-theory", {"tenant": "acme", "tbox": TBOX}
            )
            assert response.status == 409
            assert response.payload["error"]["code"] == "duplicate-tenant"

        serve(body)

    def test_admission_control_is_429(self):
        async def body():
            app = ServingApp(max_tenants=1)
            try:
                await register(app, "acme")
                response = await app.request(
                    "POST", "/register-theory", {"tenant": "beta", "tbox": TBOX}
                )
                assert response.status == 429
                assert response.payload["error"]["code"] == "max-tenants"
            finally:
                await app.aclose()

        serve(body)

    def test_unknown_workload_is_404(self, app):
        async def body():
            response = await app.request(
                "POST",
                "/register-theory",
                {"tenant": "acme", "workload": "no-such-workload"},
            )
            assert response.status == 404
            assert response.payload["error"]["code"] == "unknown-workload"

        serve(body)

    @pytest.mark.parametrize(
        "payload, code",
        [
            ({"tbox": TBOX}, "missing-field"),
            ({"tenant": "acme"}, "bad-theory"),
            ({"tenant": "acme", "tbox": TBOX, "workload": "S"}, "bad-theory"),
            ({"tenant": "acme", "tbox": "this is not an axiom"}, "bad-theory"),
            ({"tenant": "acme", "tbox": TBOX, "facts": [["oops"]]}, "bad-facts"),
            ({"tenant": "", "tbox": TBOX}, "bad-request"),
        ],
    )
    def test_malformed_registrations_are_400(self, app, payload, code):
        async def body():
            response = await app.request("POST", "/register-theory", payload)
            assert response.status == 400
            assert response.payload["error"]["code"] == code

        serve(body)


class TestAnswer:
    def test_reasoning_answer_over_http_contract(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": "q(A) :- Person(A)"}
            )
            assert response.status == 200
            # alice directly, dana via Grad [= Student, bob via attendance.
            assert response.payload["answers"] == [["alice"], ["bob"], ["dana"]]
            assert response.payload["count"] == 3
            assert response.payload["source"] == "engine"
            assert response.payload["coalesced"] is False
            assert response.payload["answer_cached"] is False

        serve(body)

    def test_warm_repeat_is_cached(self, app):
        async def body():
            await register(app, "acme")
            query = {"tenant": "acme", "query": "q(A) :- Student(A)"}
            first = await app.request("POST", "/answer", query)
            second = await app.request("POST", "/answer", query)
            assert second.payload["source"] == "memory"
            assert second.payload["answer_cached"] is True
            assert second.payload["answers"] == first.payload["answers"]

        serve(body)

    def test_unknown_tenant_is_404(self, app):
        async def body():
            response = await app.request(
                "POST", "/answer", {"tenant": "ghost", "query": "q(A) :- Person(A)"}
            )
            assert response.status == 404
            assert response.payload["error"]["code"] == "unknown-tenant"

        serve(body)

    @pytest.mark.parametrize(
        "query", ["q(A) :- ", 42, None, {"not": "a query"}]
    )
    def test_bad_queries_are_400(self, app, query):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": query}
            )
            assert response.status == 400
            assert response.payload["error"]["code"] == "bad-query"

        serve(body)

    def test_bad_bindings_are_400(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST",
                "/answer",
                {
                    "tenant": "acme",
                    "query": "q(A) :- Person(A)",
                    "bindings": "not-an-object",
                },
            )
            assert response.status == 400
            assert response.payload["error"]["code"] == "bad-bindings"

        serve(body)

    def test_answers_encoding_is_deterministic(self, app):
        async def body():
            await register(app, "acme")
            query = {"tenant": "acme", "query": "q(A) :- Person(A)"}
            first = await app.request("POST", "/answer", query)
            second = await app.request("POST", "/answer", query)
            assert json.dumps(first.payload["answers"]) == json.dumps(
                second.payload["answers"]
            )

        serve(body)


class TestDataAndInvalidation:
    def test_adding_facts_bumps_epoch_and_invalidates_answers(self, app):
        async def body():
            await register(app, "acme")
            query = {"tenant": "acme", "query": "q(A) :- Student(A)"}
            first = await app.request("POST", "/answer", query)
            mutation = await app.request(
                "POST",
                "/data",
                {"tenant": "acme", "add": [["Student", ["frank"]]]},
            )
            assert mutation.status == 200
            assert mutation.payload["added"] == 1
            assert mutation.payload["epoch"] > first.payload["epoch"]
            fresh = await app.request("POST", "/answer", query)
            assert fresh.payload["answer_cached"] is False
            assert ["frank"] in fresh.payload["answers"]
            warm = await app.request("POST", "/answer", query)
            assert warm.payload["answer_cached"] is True

        serve(body)

    def test_removing_facts_shrinks_answers(self, app):
        async def body():
            await register(app, "acme")
            query = {"tenant": "acme", "query": "q(A) :- Person(A)"}
            before = await app.request("POST", "/answer", query)
            assert ["alice"] in before.payload["answers"]
            await app.request(
                "POST",
                "/data",
                {"tenant": "acme", "remove": [["Student", ["alice"]]]},
            )
            after = await app.request("POST", "/answer", query)
            assert ["alice"] not in after.payload["answers"]

        serve(body)

    def test_empty_mutation_is_400(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request("POST", "/data", {"tenant": "acme"})
            assert response.status == 400

        serve(body)

    def test_invalidate_answers_scope(self, app):
        async def body():
            await register(app, "acme")
            query = {"tenant": "acme", "query": "q(A) :- Student(A)"}
            await app.request("POST", "/answer", query)
            response = await app.request(
                "POST", "/invalidate", {"tenant": "acme", "scope": "answers"}
            )
            assert response.status == 200
            assert response.payload["invalidated"] >= 1
            fresh = await app.request("POST", "/answer", query)
            assert fresh.payload["answer_cached"] is False

        serve(body)

    def test_invalidate_tenant_scope_deregisters(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST", "/invalidate", {"tenant": "acme", "scope": "tenant"}
            )
            assert response.status == 200
            gone = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": "q(A) :- Person(A)"}
            )
            assert gone.status == 404

        serve(body)

    def test_bad_scope_is_400(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request(
                "POST", "/invalidate", {"tenant": "acme", "scope": "everything"}
            )
            assert response.status == 400
            assert response.payload["error"]["code"] == "bad-scope"

        serve(body)


class TestRoutingAndStats:
    def test_unknown_endpoint_is_404(self, app):
        async def body():
            response = await app.request("GET", "/no-such-endpoint")
            assert response.status == 404
            assert response.payload["error"]["code"] == "unknown-endpoint"

        serve(body)

    def test_wrong_method_is_405(self, app):
        async def body():
            response = await app.request("GET", "/answer")
            assert response.status == 405
            assert response.payload["error"]["code"] == "method-not-allowed"

        serve(body)

    def test_non_object_body_is_400(self, app):
        async def body():
            response = await app.request("POST", "/answer", ["not", "an", "object"])
            assert response.status == 400

        serve(body)

    def test_healthz(self, app):
        async def body():
            response = await app.request("GET", "/healthz")
            assert response.status == 200
            assert response.payload["status"] == "ok"

        serve(body)

    def test_stats_shape(self, app):
        async def body():
            await register(app, "acme")
            await app.request(
                "POST", "/answer", {"tenant": "acme", "query": "q(A) :- Person(A)"}
            )
            response = await app.request("GET", "/stats")
            assert response.status == 200
            payload = response.payload
            assert "acme" in payload["tenants"]
            tenant = payload["tenants"]["acme"]
            assert tenant["answers_served"] == 1
            assert tenant["facts"] == len(FACTS)
            assert len(payload["artifacts"]) == 1
            (artifact,) = payload["artifacts"].values()
            assert artifact["tenants"] == ["acme"]
            assert artifact["compiles"] == 1
            assert payload["coalescing"]["leaders"] == 1
            assert payload["store"] is None  # memory-only app
            assert payload["requests"]["/answer"] == 1

        serve(body)

    def test_responses_serialize_to_bytes(self, app):
        async def body():
            await register(app, "acme")
            response = await app.request("GET", "/stats")
            decoded = json.loads(response.body())
            assert decoded["tenants"]["acme"]["backend"] == "memory"

        serve(body)
