"""Differential serving test: HTTP answers == in-process answers, per byte.

Seeded :class:`~repro.fuzzing.generator.WorkloadGenerator` triples are
pushed through the *entire* serving stack — theory registered as tagged
JSON TGDs, facts loaded over ``/data``-style payloads, queries issued in
their JSON form over a real socket — and the answers must be
byte-identical (as canonical JSON) to a direct
``OBDASystem.prepare(...).execute()`` over the same triple.  Any drift in
payload decoding, fact loading, fingerprint resolution, coalescing or
answer encoding shows up as a byte diff with the generating seed in the
assertion message.
"""

import asyncio
import json

import pytest

from repro.api import OBDASystem
from repro.cache.serialization import query_to_json, tgd_to_json
from repro.fuzzing import GeneratorConfig, WorkloadGenerator
from repro.serving import ServingApp, ServingClient, ServingServer
from repro.serving.app import encode_answers

from .conftest import serve

#: Small-but-nontrivial generated triples: compiles in milliseconds,
#: answers nonempty often enough to be meaningful.
CONFIG = GeneratorConfig(
    fragment="linear",
    predicates=5,
    max_arity=2,
    rules=6,
    query_atoms=2,
    facts_per_relation=8,
    domain_size=12,
)

SEED = 7
CASES = 8


def case_facts(case) -> list[list]:
    """The case's ABox in the serving wire format."""
    return sorted(
        [atom.predicate.name, [term.value for term in atom.terms]]
        for atom in case.instance.facts
    )


def direct_answers(case) -> list[list]:
    """The in-process reference: same triple, no serving tier."""
    system = OBDASystem(
        case.theory,
        database=case.instance,
        use_nc_pruning=bool(case.theory.negative_constraints),
    )
    try:
        return encode_answers(system.prepare(case.query).execute().tuples)
    finally:
        system.close()


class TestServingMatchesInProcess:
    def test_generated_triples_are_byte_identical_over_http(self):
        async def body():
            generator = WorkloadGenerator(seed=SEED, config=CONFIG)
            app = ServingApp()
            server = ServingServer(app)
            await server.start()
            client = ServingClient("127.0.0.1", server.port)
            try:
                for index in range(CASES):
                    case = generator.case(index)
                    tenant = f"case-{index}"
                    response = await client.request(
                        "POST",
                        "/register-theory",
                        {
                            "tenant": tenant,
                            "tgds": [tgd_to_json(rule) for rule in case.theory.tgds],
                            "facts": case_facts(case),
                        },
                    )
                    assert response.status == 201, (case.describe(), response.payload)
                    response = await client.request(
                        "POST",
                        "/answer",
                        {"tenant": tenant, "query": query_to_json(case.query)},
                    )
                    assert response.status == 200, (case.describe(), response.payload)
                    served = json.dumps(response.payload["answers"], sort_keys=True)
                    reference = json.dumps(direct_answers(case), sort_keys=True)
                    assert served == reference, (
                        f"seed {SEED} case {index} ({case.describe()}): served "
                        f"{served} != direct {reference}"
                    )
            finally:
                await client.aclose()
                await server.stop()

        serve(body)

    def test_textual_and_json_query_forms_agree(self):
        """The two query encodings must resolve to the same canonical query."""

        async def body():
            generator = WorkloadGenerator(seed=SEED, config=CONFIG)
            case = generator.case(0)
            app = ServingApp()
            try:
                response = await app.request(
                    "POST",
                    "/register-theory",
                    {
                        "tenant": "t",
                        "tgds": [tgd_to_json(rule) for rule in case.theory.tgds],
                        "facts": case_facts(case),
                    },
                )
                assert response.status == 201
                via_json = await app.request(
                    "POST",
                    "/answer",
                    {"tenant": "t", "query": query_to_json(case.query)},
                )
                assert via_json.status == 200
                # The JSON form compiled it; the textual form must be warm
                # (same canonical query -> same cache slot).
                head_terms = ", ".join(str(t) for t in case.query.head.terms)
                body_atoms = ", ".join(
                    f"{atom.predicate.name}({', '.join(str(t) for t in atom.terms)})"
                    for atom in case.query.body
                )
                textual = f"{case.query.head.predicate.name}({head_terms}) :- {body_atoms}"
                via_text = await app.request(
                    "POST", "/answer", {"tenant": "t", "query": textual}
                )
                assert via_text.status == 200
                assert via_text.payload["source"] == "memory"
                assert via_text.payload["answers"] == via_json.payload["answers"]
            finally:
                await app.aclose()

        serve(body)

    def test_mutated_tenant_keeps_matching_in_process(self):
        """After serving-side fact mutations, answers still match a fresh
        in-process system over the mutated fact set."""

        async def body():
            generator = WorkloadGenerator(seed=SEED, config=CONFIG)
            case = generator.case(1)
            facts = case_facts(case)
            removed = facts[: len(facts) // 2]
            app = ServingApp()
            try:
                await app.request(
                    "POST",
                    "/register-theory",
                    {
                        "tenant": "t",
                        "tgds": [tgd_to_json(rule) for rule in case.theory.tgds],
                        "facts": facts,
                    },
                )
                response = await app.request(
                    "POST", "/data", {"tenant": "t", "remove": removed}
                )
                assert response.status == 200
                served = await app.request(
                    "POST",
                    "/answer",
                    {"tenant": "t", "query": query_to_json(case.query)},
                )
                from repro.database.instance import RelationalInstance

                remaining = [fact for fact in facts if fact not in removed]
                reference_case = case.with_facts([])
                system = OBDASystem(
                    reference_case.theory,
                    database=RelationalInstance(),
                )
                try:
                    for relation, values in remaining:
                        system.database.add_tuple(relation, values)
                    reference = encode_answers(
                        system.prepare(case.query).execute().tuples
                    )
                finally:
                    system.close()
                assert served.payload["answers"] == reference

            finally:
                await app.aclose()

        serve(body)
