"""Request coalescing: one compile per herd, warm answers never starved."""

import asyncio
import threading

import pytest

from repro.scheduling import SequentialStrategy
from repro.serving import ServingApp, SingleFlight

from .conftest import register, serve


class TestSingleFlightUnit:
    def test_concurrent_calls_coalesce_onto_one_execution(self):
        async def body():
            flights = SingleFlight()
            calls = 0

            async def thunk():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return "result"

            results = await asyncio.gather(
                *(flights.run("key", thunk) for _ in range(25))
            )
            assert calls == 1
            assert set(results) == {"result"}
            assert flights.leaders == 1
            assert flights.joined == 24
            assert len(flights) == 0

        serve(body)

    def test_distinct_keys_fly_separately(self):
        async def body():
            flights = SingleFlight()

            async def thunk(value):
                await asyncio.sleep(0.01)
                return value

            results = await asyncio.gather(
                flights.run("a", lambda: thunk(1)),
                flights.run("b", lambda: thunk(2)),
                flights.run("a", lambda: thunk(3)),
            )
            assert results == [1, 2, 1]
            assert flights.leaders == 2
            assert flights.joined == 1

        serve(body)

    def test_leader_failure_reaches_every_joiner(self):
        async def body():
            flights = SingleFlight()

            async def boom():
                await asyncio.sleep(0.01)
                raise RuntimeError("compile failed")

            results = await asyncio.gather(
                *(flights.run("key", boom) for _ in range(5)),
                return_exceptions=True,
            )
            assert all(isinstance(r, RuntimeError) for r in results)
            # A failed flight is forgotten: the next call starts fresh.
            assert len(flights) == 0
            assert flights.pending("key") is False

        serve(body)

    def test_completed_flight_starts_fresh_next_time(self):
        async def body():
            flights = SingleFlight()

            async def thunk():
                return "x"

            await flights.run("key", thunk)
            await flights.run("key", thunk)
            assert flights.leaders == 2
            assert flights.joined == 0

        serve(body)


class TestServingCoalescing:
    @pytest.mark.parametrize("herd", [10, 50])
    def test_cold_herd_compiles_exactly_once(self, app, herd):
        async def body():
            await register(app, "acme")
            query = {"tenant": "acme", "query": "q(A) :- Person(A)"}
            responses = await asyncio.gather(
                *(app.request("POST", "/answer", query) for _ in range(herd))
            )
            artifacts = app.registry.get("acme").artifacts
            assert artifacts.compiles == 1, (
                f"{herd} concurrent cold requests ran {artifacts.compiles} "
                "engine compiles; the herd must coalesce onto one"
            )
            answers = {tuple(map(tuple, r.payload["answers"])) for r in responses}
            assert len(answers) == 1
            assert all(r.status == 200 for r in responses)
            # Every request either led the one flight, joined it, or was
            # served from the cache the flight had already filled.
            assert app.flights.leaders == 1
            served_warm = sum(
                r.payload["source"] == "memory" for r in responses
            )
            assert app.flights.joined + served_warm == herd - 1

        serve(body)

    @pytest.mark.parametrize("herd", [10, 50])
    def test_held_compile_coalesces_the_whole_herd(self, herd):
        """With the compile provably in flight, every follower joins it.

        The ungated herd test can't pin the ``joined`` counter — on a
        busy box the leader's compile may finish before the followers
        probe, serving them from the cache instead of the flight.  Here
        the compile is gated on an event, so all ``herd - 1`` followers
        MUST coalesce; the counters become deterministic.
        """
        started = threading.Event()
        release = threading.Event()

        async def body():
            app = ServingApp(
                strategy_factory=lambda: GatedStrategy(started, release)
            )
            try:
                await register(app, "acme")
                query = {"tenant": "acme", "query": "q(A) :- Person(A)"}
                requests = [
                    asyncio.ensure_future(app.request("POST", "/answer", query))
                    for _ in range(herd)
                ]
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                # The compile is wedged; let every request reach the flight.
                await asyncio.sleep(0)
                assert not any(request.done() for request in requests)
                release.set()
                responses = await asyncio.gather(*requests)
                artifacts = app.registry.get("acme").artifacts
                assert artifacts.compiles == 1
                assert app.flights.leaders == 1
                assert app.flights.joined == herd - 1
                assert sum(r.payload["coalesced"] for r in responses) == herd - 1
                assert all(r.status == 200 for r in responses)
            finally:
                release.set()
                await app.aclose()

        serve(body)

    def test_herds_on_distinct_queries_compile_once_each(self, app):
        async def body():
            await register(app, "acme")
            queries = [
                "q(A) :- Person(A)",
                "q(A) :- Student(A)",
                "q(A, B) :- attends(A, B)",
            ]
            await asyncio.gather(
                *(
                    app.request(
                        "POST", "/answer", {"tenant": "acme", "query": query}
                    )
                    for query in queries
                    for _ in range(10)
                )
            )
            artifacts = app.registry.get("acme").artifacts
            assert artifacts.compiles == len(queries)

        serve(body)

    def test_same_query_coalesces_across_sharing_tenants(self, app):
        async def body():
            await register(app, "acme")
            await register(app, "beta", facts=[["Student", ["zoe"]]])
            # Same fingerprint + same canonical query -> one flight, even
            # though the requests name different tenants.
            responses = await asyncio.gather(
                *(
                    app.request(
                        "POST",
                        "/answer",
                        {"tenant": tenant, "query": "q(A) :- Person(A)"},
                    )
                    for tenant in ("acme", "beta")
                    for _ in range(10)
                )
            )
            artifacts = app.registry.get("acme").artifacts
            assert artifacts.compiles == 1
            assert all(r.status == 200 for r in responses)
            # ... while the answers stayed per-tenant.
            beta_answers = {
                tuple(map(tuple, r.payload["answers"]))
                for r in responses
                if r.payload["tenant"] == "beta"
            }
            assert beta_answers == {(("zoe",),)}

        serve(body)


class GatedStrategy(SequentialStrategy):
    """Blocks every expansion until released — a compile held mid-flight."""

    def __init__(self, started: threading.Event, release: threading.Event):
        self._started = started
        self._release = release

    def expand_generation(self, engine, batch):
        self._started.set()
        assert self._release.wait(timeout=30), "starvation test deadlocked"
        return super().expand_generation(engine, batch)


class TestNoStarvation:
    def test_slow_compile_does_not_block_warm_answers(self):
        """Warm answers on other queries flow while a compile is stuck."""
        started = threading.Event()
        release = threading.Event()
        strategies = iter([GatedStrategy(started, release), None])

        async def body():
            app = ServingApp(strategy_factory=lambda: next(strategies))
            try:
                await register(app, "acme")
                warm_query = {"tenant": "acme", "query": "q(A) :- Person(A)"}
                # Warm up one query while the gate is open.
                release.set()
                await app.request("POST", "/answer", warm_query)
                release.clear()
                started.clear()

                # Wedge a cold compile mid-generation.
                cold = asyncio.ensure_future(
                    app.request(
                        "POST",
                        "/answer",
                        {"tenant": "acme", "query": "q(A, B) :- attends(A, B)"},
                    )
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )

                # The compile is provably stuck; warm answers must land.
                warm_responses = await asyncio.gather(
                    *(app.request("POST", "/answer", warm_query) for _ in range(10))
                )
                assert all(r.status == 200 for r in warm_responses)
                assert all(
                    r.payload["source"] == "memory" for r in warm_responses
                )
                assert not cold.done(), (
                    "the gated compile finished early; the warm requests "
                    "were not served concurrently with it"
                )

                release.set()
                cold_response = await cold
                assert cold_response.status == 200
            finally:
                release.set()
                await app.aclose()

        serve(body)
