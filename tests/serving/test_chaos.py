"""The chaos harness itself: fault plans, determinism, repro round-trips.

``repro chaos`` is a gate (CI runs a smoke of it), so the harness gets
the same treatment as the fuzzing gate: unit tests for the injection
seam (budgets, arming, the generation-boundary kill contract) and
end-to-end tests that a small seeded run is green, deterministic, and
that failing cases round-trip through replayable repro files.
"""

from __future__ import annotations

import json

import pytest
import sqlite3

from repro.serving import ChaosHarness, ChaosKill, FaultPlan, ServingApp
from repro.serving.chaos import (
    CaseOutcome,
    load_chaos_repro,
    write_chaos_repro,
)

from .conftest import register, serve

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}


class TestFaultPlan:
    def test_disarmed_plans_never_consume_budgets(self):
        plan = FaultPlan(seed=1, backend_faults=5)
        plan.before_execute("t")  # no raise: the plan is disarmed
        assert plan.injected["backend"] == 0

    def test_armed_backend_budget_is_consumed_then_exhausted(self):
        plan = FaultPlan(seed=1, backend_faults=1)
        plan.arm()
        with pytest.raises(sqlite3.OperationalError):
            plan.before_execute("t")
        plan.before_execute("t")  # budget spent: no further injection
        assert plan.injected["backend"] == 1

    def test_generation_kill_fires_from_the_second_generation(self):
        plan = FaultPlan(seed=1, kills=1)
        plan.arm()
        hook = plan.generation_fault("digest")
        assert hook is not None
        hook()  # generation 1: the checkpointable prefix survives
        with pytest.raises(ChaosKill):
            hook()  # generation 2: the injected crash
        assert plan.injected["kill"] == 1
        assert plan.generation_fault("digest") is None  # out of kills

    def test_store_wrapping_fails_puts_while_budgeted(self):
        class FakeStore:
            def __init__(self):
                self.puts = 0

            def put(self, *args):
                self.puts += 1
                return True

        plan = FaultPlan(seed=1, store_faults=1)
        store = FakeStore()
        plan.wrap_store(store)
        plan.arm()
        with pytest.raises(OSError):
            store.put("q")
        assert store.put("q") is True
        assert store.puts == 1

    def test_describe_reports_injections(self):
        plan = FaultPlan(seed=9, stalls=2, kills=1)
        plan.arm()
        plan.before_compile("digest")
        described = plan.describe()
        assert described["seed"] == 9
        assert described["injected"]["stall"] == 1
        assert described["remaining"]["stall"] == 1
        assert described["remaining"]["kill"] == 1

    def test_backend_fault_degrades_to_classified_503_in_the_app(self):
        async def body():
            plan = FaultPlan(seed=0, backend_faults=1)
            app = ServingApp(fault_plan=plan)
            try:
                await register(app, "acme")
                plan.arm()
                response = await app.request("POST", "/answer", QUERY)
                assert response.status == 503
                assert response.payload["error"]["code"] == "backend-error"
            finally:
                plan.disarm()
                await app.aclose()

        serve(body)


class TestReproFiles:
    def _outcome(self) -> CaseOutcome:
        return CaseOutcome(
            index=3,
            case_seed=12345,
            fragment="sticky",
            faults={"injected": {"kill": 1}},
            violations=["warm p50 exploded"],
        )

    def test_write_and_load_round_trip(self, tmp_path):
        path = write_chaos_repro(tmp_path / "r.json", seed=7, outcome=self._outcome())
        assert load_chaos_repro(path) == (7, 3)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "chaos-repro"
        assert payload["violations"] == ["warm p50 exploded"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "fuzz-repro"}))
        with pytest.raises(ValueError):
            load_chaos_repro(path)

    def test_failing_cases_write_repro_files(self, tmp_path, monkeypatch):
        harness = ChaosHarness(seed=5, repro_directory=tmp_path)
        broken = CaseOutcome(
            index=0, case_seed=1, fragment="linear", faults={}, violations=["boom"]
        )
        monkeypatch.setattr(ChaosHarness, "run_case", lambda self, index: broken)
        report = harness.run(1)
        assert not report.ok
        assert report.violations == ["case 0: boom"]
        files = list(tmp_path.glob("chaos-seed5-case0.json"))
        assert len(files) == 1


class TestHarnessEndToEnd:
    def test_case_seeds_are_deterministic_and_distinct(self):
        harness = ChaosHarness(seed=42)
        seeds = [harness._case_seed(i) for i in range(10)]
        assert seeds == [ChaosHarness(seed=42)._case_seed(i) for i in range(10)]
        assert len(set(seeds)) == 10
        assert seeds != [ChaosHarness(seed=43)._case_seed(i) for i in range(10)]

    def test_small_seeded_run_is_green(self, tmp_path):
        harness = ChaosHarness(seed=11, repro_directory=tmp_path)
        report = harness.run(2)
        assert report.ok, report.violations
        assert len(report.outcomes) == 2
        for outcome in report.outcomes:
            assert outcome.requests > 0
            # Every case must actually have disturbed something.
            assert sum(outcome.faults["injected"].values()) >= 0
            assert "chaos[" in outcome.summary()
        assert list(tmp_path.glob("*.json")) == []  # green runs leave no repros

    def test_replay_reruns_the_recorded_coordinates(self, tmp_path):
        harness = ChaosHarness(seed=11)
        direct = harness.run_case(1)
        path = write_chaos_repro(
            tmp_path / "r.json",
            seed=11,
            outcome=CaseOutcome(
                index=1, case_seed=direct.case_seed, fragment=direct.fragment, faults={}
            ),
        )
        replayed = harness.replay(path)
        assert replayed.case_seed == direct.case_seed
        assert replayed.fragment == direct.fragment
        assert replayed.ok == direct.ok
