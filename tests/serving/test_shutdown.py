"""Shutdown under load: bounded drains, checkpoints, no orphan threads.

``ServingApp.aclose`` must interrupt in-flight compiles *first* (they
abort at the next generation boundary, checkpoints already on disk), so
draining the executors is bounded by one generation rather than one
compile; warm traffic in flight completes; and after close no compile or
tenant executor thread survives (``threading.enumerate()`` is clean).
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.scheduling import SequentialStrategy
from repro.serving import ServingApp
from repro.serving.tenants import CHECKPOINT_DIRNAME

from .conftest import register, serve

QUERY = {"tenant": "acme", "query": "q(A) :- Person(A)"}


class SleepyStrategy(SequentialStrategy):
    """Sleeps before each frontier generation (a slow compile)."""

    def __init__(self, delay: float) -> None:
        self._delay = delay

    def expand_generation(self, engine, batch):
        time.sleep(self._delay)
        return super().expand_generation(engine, batch)


def _executor_threads() -> list[str]:
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("compile-", "tenant-"))
    ]


class TestShutdownUnderLoad:
    def test_close_interrupts_cold_compile_and_keeps_its_checkpoint(
        self, tmp_path
    ):
        async def body():
            app = ServingApp(
                cache=str(tmp_path),
                strategy_factory=lambda: SleepyStrategy(0.1),
            )
            await register(app, "acme")
            inflight = asyncio.ensure_future(app.request("POST", "/answer", QUERY))
            # Let at least one generation finish (and checkpoint).
            await asyncio.sleep(0.18)
            await app.aclose()
            response = await inflight
            assert response.status == 504, response.payload
            assert response.payload["error"]["code"] == "timeout"
            checkpoints = list((tmp_path / CHECKPOINT_DIRNAME).glob("*.json"))
            assert checkpoints, "interrupted compile must leave its checkpoint"

        serve(body)

    def test_drain_is_bounded_by_one_generation_not_one_compile(self, tmp_path):
        async def body():
            generation = 0.2
            app = ServingApp(
                cache=str(tmp_path),
                strategy_factory=lambda: SleepyStrategy(generation),
            )
            await register(app, "acme")
            inflight = asyncio.ensure_future(app.request("POST", "/answer", QUERY))
            await asyncio.sleep(0.05)
            started = time.monotonic()
            await app.aclose()
            drained = time.monotonic() - started
            # 3 generations x 0.2s each would be a ~0.6s compile; the
            # interrupt fires at the next boundary, so the drain costs at
            # most ~one generation (plus scheduling slack).
            assert drained < 2 * generation + 0.3, drained
            await inflight

        serve(body)

    def test_warm_requests_in_flight_complete_through_shutdown(self, app):
        async def body():
            await register(app, "acme")
            warm = await app.request("POST", "/answer", QUERY)
            assert warm.ok
            inflight = [
                asyncio.ensure_future(app.request("POST", "/answer", QUERY))
                for _ in range(8)
            ]
            responses = await asyncio.gather(*inflight)
            await app.aclose()
            assert all(r.ok for r in responses)
            assert all(r.payload["source"] == "memory" for r in responses)

        serve(body)

    def test_no_executor_threads_survive_close(self, tmp_path):
        async def body():
            app = ServingApp(cache=str(tmp_path))
            await register(app, "acme")
            await register(app, "other", tbox="Employee [= Person")
            assert (await app.request("POST", "/answer", QUERY)).ok
            assert _executor_threads(), "sanity: executors exist while open"
            await app.aclose()

        serve(body)
        assert _executor_threads() == []

    def test_close_is_idempotent(self, tmp_path):
        async def body():
            app = ServingApp(cache=str(tmp_path))
            await register(app, "acme")
            await app.aclose()
            await app.aclose()
            app.close()

        serve(body)
        assert _executor_threads() == []
