"""The HTTP/1.1 transport: framing, keep-alive, malformed input, shutdown."""

import asyncio
import json

from repro.serving import ServingApp, ServingClient, ServingServer
from repro.serving.http import MAX_BODY_BYTES

from .conftest import register, serve


async def _started_server():
    app = ServingApp()
    server = ServingServer(app)
    await server.start()
    return app, server


async def _raw_exchange(port: int, raw: bytes) -> tuple[int, dict]:
    """Send raw bytes, read one response; returns (status, payload)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split(b" ")[1])
    headers = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return status, json.loads(body) if body else {}


class TestTransport:
    def test_keep_alive_serves_many_requests_on_one_connection(self):
        async def body():
            app, server = await _started_server()
            client = ServingClient("127.0.0.1", server.port)
            try:
                await register(app, "acme")
                for _ in range(5):
                    response = await client.request("GET", "/healthz")
                    assert response.status == 200
                answer = await client.request(
                    "POST",
                    "/answer",
                    {"tenant": "acme", "query": "q(A) :- Person(A)"},
                )
                assert answer.status == 200
                # All six requests flowed over one accepted connection.
                assert server.requests_served == 6
                assert len(server._connections) == 1
            finally:
                await client.aclose()
                await server.stop()

        serve(body)

    def test_connection_close_header_is_honoured(self):
        async def body():
            app, server = await _started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                payload = await reader.read()  # EOF: server closed it
                assert b"200" in payload.split(b"\r\n", 1)[0]
                writer.close()
            finally:
                await server.stop()

        serve(body)

    def test_http_1_0_defaults_to_close(self):
        async def body():
            app, server = await _started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /healthz HTTP/1.0\r\n\r\n")
                await writer.drain()
                payload = await reader.read()
                assert b"Connection: close" in payload
                writer.close()
            finally:
                await server.stop()

        serve(body)


class TestMalformedInput:
    def test_unparseable_json_body_is_400(self):
        async def body():
            app, server = await _started_server()
            try:
                broken = b"{not json"
                status, payload = await _raw_exchange(
                    server.port,
                    b"POST /answer HTTP/1.1\r\n"
                    b"Content-Length: " + str(len(broken)).encode() + b"\r\n"
                    b"\r\n" + broken,
                )
                assert status == 400
                assert payload["error"]["code"] == "bad-json"
            finally:
                await server.stop()

        serve(body)

    def test_oversized_body_is_413_without_reading_it(self):
        async def body():
            app, server = await _started_server()
            try:
                status, payload = await _raw_exchange(
                    server.port,
                    b"POST /answer HTTP/1.1\r\n"
                    b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode() + b"\r\n"
                    b"\r\n",
                )
                assert status == 413
                assert payload["error"]["code"] == "payload-too-large"
            finally:
                await server.stop()

        serve(body)

    def test_non_numeric_content_length_is_400(self):
        async def body():
            app, server = await _started_server()
            try:
                status, payload = await _raw_exchange(
                    server.port,
                    b"POST /answer HTTP/1.1\r\nContent-Length: lots\r\n\r\n",
                )
                assert status == 400
                assert payload["error"]["code"] == "bad-content-length"
            finally:
                await server.stop()

        serve(body)

    def test_error_bodies_are_structured_over_the_wire(self):
        async def body():
            app, server = await _started_server()
            client = ServingClient("127.0.0.1", server.port)
            try:
                response = await client.request(
                    "POST", "/answer", {"tenant": "ghost", "query": "q(A) :- p(A)"}
                )
                assert response.status == 404
                assert set(response.payload["error"]) == {"code", "message"}
            finally:
                await client.aclose()
                await server.stop()

        serve(body)


class TestShutdown:
    def test_stop_refuses_new_connections_and_closes_the_app(self):
        async def body():
            app, server = await _started_server()
            await register(app, "acme")
            port = server.port
            await server.stop()
            with __import__("pytest").raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)
            # The registry was closed with the server.
            assert len(app.registry) == 0 or app._closed

        serve(body)

    def test_stop_with_idle_keepalive_connection_does_not_hang(self):
        async def body():
            app, server = await _started_server()
            client = ServingClient("127.0.0.1", server.port)
            response = await client.request("GET", "/healthz")
            assert response.status == 200
            # The connection is idle inside the keep-alive loop; stop()
            # must cancel it within the drain timeout, not wait 30s.
            await asyncio.wait_for(server.stop(drain_timeout=0.2), timeout=10)
            await client.aclose()

        serve(body)

    def test_ephemeral_ports_isolate_parallel_servers(self):
        async def body():
            _, first = await _started_server()
            _, second = await _started_server()
            try:
                assert first.port != second.port
            finally:
                await first.stop()
                await second.stop()

        serve(body)
