"""Fingerprint sharing and tenant isolation.

Two tenants registering structurally identical ontologies must share one
compiled artifact set (one compile serves both; one store slice), while
keeping fully isolated data: mutating one tenant's facts bumps only that
tenant's epoch and invalidates only its answer caches.
"""

from repro.serving import ServingApp

from .conftest import FACTS, TBOX, register, serve

#: TBOX with rules reordered and whitespace shuffled: structurally
#: identical (the fingerprint canonicalises rule order and renaming), so
#: it must land on the same artifact set.
TBOX_REORDERED = """
Course [= exists taughtBy
exists attends- [= Course
Grad [= Student
exists attends [= Student
Student [= Person
"""

#: A structurally different theory: must get its own artifact set.
TBOX_OTHER = """
Employee [= Person
exists worksFor [= Employee
"""


class TestFingerprintSharing:
    def test_identical_theories_share_one_artifact_set(self, app):
        async def body():
            first = await register(app, "acme")
            second = await register(app, "beta", tbox=TBOX_REORDERED, facts=[])
            assert first["fingerprint"] == second["fingerprint"]
            assert first["shared_artifacts"] is False
            assert second["shared_artifacts"] is True
            assert len(app.registry.artifact_sets()) == 1

        serve(body)

    def test_different_theories_get_their_own_artifacts(self, app):
        async def body():
            first = await register(app, "acme")
            other = await register(app, "gamma", tbox=TBOX_OTHER, facts=[])
            assert first["fingerprint"] != other["fingerprint"]
            assert other["shared_artifacts"] is False
            assert len(app.registry.artifact_sets()) == 2

        serve(body)

    def test_one_tenants_compile_warms_the_other(self, app):
        async def body():
            await register(app, "acme")
            await register(app, "beta", tbox=TBOX_REORDERED, facts=[])
            cold = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": "q(A) :- Person(A)"}
            )
            assert cold.payload["source"] == "engine"
            # beta never compiled anything, yet the rewriting is warm.
            warm = await app.request(
                "POST", "/answer", {"tenant": "beta", "query": "q(A) :- Person(A)"}
            )
            assert warm.payload["source"] == "memory"
            artifacts = app.registry.get("acme").artifacts
            assert artifacts is app.registry.get("beta").artifacts
            assert artifacts.compiles == 1

        serve(body)

    def test_late_registration_warms_prepared_pool(self, app):
        async def body():
            await register(app, "acme")
            await app.request(
                "POST", "/answer", {"tenant": "acme", "query": "q(A) :- Person(A)"}
            )
            payload = await register(app, "beta", tbox=TBOX_REORDERED, facts=[])
            # The shared cache already held acme's rewriting: beta's pool
            # was planned at registration time.
            assert payload["warmed_prepared"] == 1

        serve(body)

    def test_deregistration_releases_artifacts_only_when_last_out(self, app):
        async def body():
            await register(app, "acme")
            await register(app, "beta", tbox=TBOX_REORDERED, facts=[])
            await app.request(
                "POST", "/invalidate", {"tenant": "acme", "scope": "tenant"}
            )
            assert len(app.registry.artifact_sets()) == 1
            await app.request(
                "POST", "/invalidate", {"tenant": "beta", "scope": "tenant"}
            )
            assert len(app.registry.artifact_sets()) == 0

        serve(body)


class TestTenantIsolation:
    def test_different_facts_different_answers_same_artifacts(self, app):
        async def body():
            await register(app, "acme")
            await register(
                app,
                "beta",
                tbox=TBOX_REORDERED,
                facts=[["Student", ["zoe"]]],
            )
            query = "q(A) :- Person(A)"
            acme = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": query}
            )
            beta = await app.request(
                "POST", "/answer", {"tenant": "beta", "query": query}
            )
            assert ["alice"] in acme.payload["answers"]
            assert beta.payload["answers"] == [["zoe"]]

        serve(body)

    def test_mutating_one_tenant_leaves_the_others_answers_cached(self, app):
        async def body():
            await register(app, "acme")
            await register(app, "beta", tbox=TBOX_REORDERED, facts=[])
            query = "q(A) :- Person(A)"
            for tenant in ("acme", "beta"):
                await app.request(
                    "POST", "/answer", {"tenant": tenant, "query": query}
                )
            beta_epoch = app.registry.get("beta").system.database.epoch
            await app.request(
                "POST",
                "/data",
                {"tenant": "acme", "add": [["Student", ["frank"]]]},
            )
            # acme's next answer recomputes; beta's stays cached, and
            # beta's epoch never moved.
            acme = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": query}
            )
            beta = await app.request(
                "POST", "/answer", {"tenant": "beta", "query": query}
            )
            assert acme.payload["answer_cached"] is False
            assert ["frank"] in acme.payload["answers"]
            assert beta.payload["answer_cached"] is True
            assert ["frank"] not in beta.payload["answers"]
            assert app.registry.get("beta").system.database.epoch == beta_epoch

        serve(body)

    def test_invalidation_is_per_tenant(self, app):
        async def body():
            await register(app, "acme")
            await register(app, "beta", tbox=TBOX_REORDERED, facts=[])
            query = "q(A) :- Person(A)"
            for tenant in ("acme", "beta"):
                await app.request(
                    "POST", "/answer", {"tenant": tenant, "query": query}
                )
            await app.request(
                "POST", "/invalidate", {"tenant": "acme", "scope": "answers"}
            )
            acme = await app.request(
                "POST", "/answer", {"tenant": "acme", "query": query}
            )
            beta = await app.request(
                "POST", "/answer", {"tenant": "beta", "query": query}
            )
            assert acme.payload["answer_cached"] is False
            assert beta.payload["answer_cached"] is True

        serve(body)

    def test_per_tenant_backends_same_answers(self):
        async def body():
            app = ServingApp()
            try:
                await register(app, "mem", backend="memory")
                await register(
                    app, "sql", tbox=TBOX_REORDERED, facts=FACTS, backend="sqlite"
                )
                query = "q(A) :- Person(A)"
                mem = await app.request(
                    "POST", "/answer", {"tenant": "mem", "query": query}
                )
                sql = await app.request(
                    "POST", "/answer", {"tenant": "sql", "query": query}
                )
                assert mem.payload["answers"] == sql.payload["answers"]
            finally:
                await app.aclose()

        serve(body)
