"""Shared fixtures of the serving-tier tests.

The suite drives the real :class:`~repro.serving.app.ServingApp` —
in-process for contract/concurrency tests (no sockets, fully
deterministic) and behind a real :class:`~repro.serving.http.ServingServer`
port for the transport tests.  There is no pytest-asyncio in the
dependency set (the library is stdlib-only); async test bodies run under
a plain ``asyncio.run`` via the ``serve`` helper.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import ServingApp

#: A small university-shaped DL-Lite TBox (textual syntax): enough
#: hierarchy for multi-CQ rewritings, cheap enough to compile in
#: milliseconds.  Grad [= Student [= Person, attendance both ways.
TBOX = """
Student [= Person
Grad [= Student
exists attends [= Student
exists attends- [= Course
Course [= exists taughtBy
"""

#: Facts matching TBOX: two students (one by attendance), one course.
FACTS = [
    ["Student", ["alice"]],
    ["Grad", ["dana"]],
    ["attends", ["bob", "cs101"]],
    ["Professor", ["eve"]],
]


def serve(coroutine_function, *args, **kwargs):
    """Run one async test body to completion on a fresh event loop."""
    return asyncio.run(coroutine_function(*args, **kwargs))


async def register(app: ServingApp, name: str, **extra):
    """Register a TBOX tenant; returns the 201 payload."""
    payload = {"tenant": name, "tbox": TBOX, "facts": FACTS}
    payload.update(extra)
    response = await app.request("POST", "/register-theory", payload)
    assert response.status == 201, response.payload
    return response.payload


@pytest.fixture()
def app():
    """A memory-only ServingApp, closed after the test."""
    application = ServingApp()
    yield application
    application.close()
