"""Tests for the QuOnto-style (PerfectRef-like) baseline rewriter."""

from repro.baselines.quonto import QuOntoStyleRewriter, quonto_rewrite
from repro.core.rewriter import rewrite
from repro.database.evaluator import QueryEvaluator
from repro.database.instance import RelationalInstance
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import QuerySet
from repro.workloads.paper_examples import (
    example2_query,
    example2_rules,
    example4_completeness_witness,
    example4_query,
    example4_rules,
)

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y = Variable("X"), Variable("Y")
a = Constant("a")


class TestCorrectness:
    def test_example2_rewriting_contains_the_key_queries(self):
        result = quonto_rewrite(example2_query(), example2_rules())
        assert result.ucq.contains_variant(example2_query())
        assert result.ucq.contains_variant(ConjunctiveQuery([Atom.of("s", A)], ()))

    def test_example4_completeness_through_the_reduce_step(self):
        result = quonto_rewrite(example4_query(), example4_rules())
        assert result.ucq.contains_variant(example4_completeness_witness())

    def test_example4_answers_match_the_chase(self):
        database = RelationalInstance()
        database.add(Atom.of("p", a))
        result = quonto_rewrite(example4_query(), example4_rules())
        assert QueryEvaluator(database).entails_ucq(result.ucq)

    def test_applicability_condition_is_respected(self):
        # The constant of Example 3 must not be lost.
        query = ConjunctiveQuery([Atom.of("t", A, B, Constant("c"))], ())
        result = quonto_rewrite(query, example2_rules())
        assert all(all(atom.name != "s" for atom in cq.body) for cq in result.ucq)

    def test_hierarchy_enumeration(self):
        rules = [
            tgd(Atom.of("undergrad", X), Atom.of("student", X)),
            tgd(Atom.of("student", X), Atom.of("person", X)),
        ]
        result = quonto_rewrite(ConjunctiveQuery([Atom.of("person", A)], (A,)), rules)
        assert len(result.ucq) == 3


class TestRelationToTGDRewrite:
    def test_output_is_a_superset_of_tgd_rewrite_on_example2(self):
        quonto = quonto_rewrite(example2_query(), example2_rules())
        nyaya = rewrite(example2_query(), example2_rules())
        quonto_store = QuerySet(quonto.ucq)
        assert all(quonto_store.find_variant(cq) is not None for cq in nyaya.ucq)
        assert len(quonto.ucq) >= len(nyaya.ucq)

    def test_exhaustive_factorisation_inflates_the_rewriting(self):
        # Three sibling role atoms that pairwise unify: the reduce step keeps
        # every collapsed variant in the output, TGD-rewrite does not.
        rules = [tgd(Atom.of("person", X), Atom.of("has_role", X, Y))]
        query = ConjunctiveQuery(
            [Atom.of("has_role", A, B), Atom.of("has_role", A, C)], (A,)
        )
        quonto = quonto_rewrite(query, rules)
        nyaya = rewrite(query, rules)
        assert len(quonto.ucq) > len(nyaya.ucq)


class TestConfiguration:
    def test_accepts_a_theory(self):
        theory = OntologyTheory(tgds=example2_rules())
        rewriter = QuOntoStyleRewriter(theory)
        assert len(rewriter.rules) == 2

    def test_rules_are_normalised(self):
        from repro.dependencies.tgd import TGD

        multi_head = TGD((Atom.of("p", X),), (Atom.of("q", X, Y), Atom.of("r", Y)))
        rewriter = QuOntoStyleRewriter([multi_head])
        assert all(rule.is_normalized for rule in rewriter.rules)

    def test_budget_is_enforced(self):
        import pytest

        rules = [
            tgd(Atom.of("c1", X), Atom.of("person", X)),
            tgd(Atom.of("c2", X), Atom.of("person", X)),
        ]
        query = ConjunctiveQuery(
            [Atom.of("person", A), Atom.of("person", B), Atom.of("person", C)], ()
        )
        with pytest.raises(RuntimeError):
            QuOntoStyleRewriter(rules, max_queries=2).rewrite(query)
