"""Tests for the Requiem-style resolution rewriter and its Skolem-term layer."""

from repro.baselines.resolution import (
    FunctionalTerm,
    HornClause,
    Literal,
    ResolutionRewriter,
    requiem_rewrite,
    term_depth,
    unify_literals,
)
from repro.core.rewriter import rewrite
from repro.database.evaluator import QueryEvaluator
from repro.database.instance import RelationalInstance
from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import tgd
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.paper_examples import (
    example2_query,
    example2_rules,
    example4_completeness_witness,
    example4_query,
    example4_rules,
)

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a = Constant("a")
P2 = Predicate("p", 2)


class TestSkolemTerms:
    def test_term_depth(self):
        nested = FunctionalTerm("f", (FunctionalTerm("g", (X,)),))
        assert term_depth(X) == 0
        assert term_depth(nested) == 2

    def test_unify_variable_with_function(self):
        left = Literal(P2, (X, FunctionalTerm("f", (X,))))
        right = Literal(P2, (a, Y))
        unifier = unify_literals(left, right)
        assert unifier is not None
        assert unifier[X] == a
        assert unifier[Y] == FunctionalTerm("f", (a,))

    def test_occurs_check_blocks_cyclic_bindings(self):
        left = Literal(P2, (X, X))
        right = Literal(P2, (Y, FunctionalTerm("f", (Y,))))
        assert unify_literals(left, right) is None

    def test_function_symbols_must_match(self):
        left = Literal(P2, (FunctionalTerm("f", (X,)), X))
        right = Literal(P2, (FunctionalTerm("g", (Y,)), Y))
        assert unify_literals(left, right) is None

    def test_predicates_must_match(self):
        assert unify_literals(Literal(P2, (X, Y)), Literal(Predicate("q", 2), (X, Y))) is None

    def test_constant_clash(self):
        assert unify_literals(Literal(P2, (a, X)), Literal(P2, (Constant("b"), Y))) is None


class TestSkolemization:
    def test_existential_variable_becomes_a_function_of_the_frontier(self):
        rewriter = ResolutionRewriter([tgd(Atom.of("p", X), Atom.of("q", X, Y))])
        clause = rewriter.rule_clauses[0]
        assert clause.head.predicate.name == "q"
        assert isinstance(clause.head.terms[1], FunctionalTerm)
        assert clause.head.terms[1].arguments == (X,)

    def test_full_rules_have_no_functions(self):
        rewriter = ResolutionRewriter([tgd(Atom.of("p", X), Atom.of("q", X))])
        assert not rewriter.rule_clauses[0].has_functions()

    def test_clause_rename_is_consistent(self):
        clause = HornClause(
            Literal(P2, (X, Y)), (Literal(Predicate("q", 1), (X,)),)
        )
        renamed = clause.rename("7")
        assert renamed.head.terms[0] == renamed.body[0].terms[0]
        assert renamed.head.terms[0] != X


class TestRewriting:
    def test_example2_key_queries_are_produced(self):
        result = requiem_rewrite(example2_query(), example2_rules(), prune_subsumed=False)
        assert result.ucq.contains_variant(ConjunctiveQuery([Atom.of("s", A)], ()))

    def test_example4_functional_terms_replace_factorisation(self):
        result = requiem_rewrite(example4_query(), example4_rules(), prune_subsumed=False)
        assert result.ucq.contains_variant(example4_completeness_witness())

    def test_function_clauses_are_excluded_from_the_output(self):
        result = requiem_rewrite(example4_query(), example4_rules(), prune_subsumed=False)
        for cq in result.ucq:
            for atom in cq.body:
                assert all(not isinstance(t, FunctionalTerm) for t in atom.terms)

    def test_prune_subsumed_never_increases_the_size(self):
        plain = requiem_rewrite(example2_query(), example2_rules(), prune_subsumed=False)
        pruned = requiem_rewrite(example2_query(), example2_rules(), prune_subsumed=True)
        assert len(pruned.ucq) <= len(plain.ucq)

    def test_answers_match_tgd_rewrite_on_a_database(self):
        database = RelationalInstance()
        database.add(Atom.of("p", a))
        nyaya = rewrite(example4_query(), example4_rules())
        requiem = requiem_rewrite(example4_query(), example4_rules())
        evaluator = QueryEvaluator(database)
        assert evaluator.entails_ucq(nyaya.ucq) == evaluator.entails_ucq(requiem.ucq) is True

    def test_hierarchy_enumeration(self):
        rules = [
            tgd(Atom.of("undergrad", X), Atom.of("student", X)),
            tgd(Atom.of("student", X), Atom.of("person", X)),
        ]
        result = requiem_rewrite(ConjunctiveQuery([Atom.of("person", A)], (A,)), rules)
        assert len(result.ucq) == 3

    def test_non_boolean_answer_variables_are_preserved(self):
        rules = [tgd(Atom.of("employee", X), Atom.of("works_for", X, Y))]
        query = ConjunctiveQuery([Atom.of("works_for", A, B)], (A,))
        result = requiem_rewrite(query, rules, prune_subsumed=False)
        assert all(cq.arity == 1 for cq in result.ucq)
        assert len(result.ucq) == 2

    def test_dead_clause_pruning_keeps_completeness(self):
        # The hierarchy below stock would explode without pruning; with it the
        # rewriting is still complete w.r.t. the chase-entailed answers.
        rules = [
            tgd(Atom.of("investor", X), Atom.of("has_stock", X, Y)),
            tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y)),
            tgd(Atom.of("common", X), Atom.of("stock", X)),
        ]
        query = ConjunctiveQuery([Atom.of("has_stock", A, B), Atom.of("stock", B)], (A,))
        database = RelationalInstance()
        database.add_tuple("investor", ("ann",))
        database.add_tuple("has_stock", ("bob", "acme"))
        database.add_tuple("common", ("acme",))
        result = requiem_rewrite(query, rules)
        answers = QueryEvaluator(database).evaluate_ucq(result.ucq)
        assert answers == {(Constant("ann"),), (Constant("bob"),)}
