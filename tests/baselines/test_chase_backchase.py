"""Tests for the Chase & Back-chase baseline (Section 2 / Example 8)."""

from repro.baselines.chase_backchase import ChaseBackchase, backchase_minimize
from repro.core.elimination import eliminate
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.dependencies.tgd import tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.containment import is_contained_in
from repro.workloads.paper_examples import example6_rules, example7_query, example8_query

A, B, C = Variable("A"), Variable("B"), Variable("C")
X, Y = Variable("X"), Variable("Y")


class TestExample8:
    """C&B finds the implication that atom coverage misses (Example 8)."""

    def test_single_atom_reformulation_is_found(self):
        backchase = ChaseBackchase(example6_rules())
        result = backchase.reformulate(example8_query())
        minimal = backchase.minimize(example8_query())
        assert result.minimal_size == 1
        assert minimal.body == (Atom.of("r", A, A, Constant("c")),)

    def test_query_elimination_cannot_do_the_same(self):
        reduced = eliminate(example8_query(), example6_rules())
        assert len(reduced.body) == 2  # coverage does not fire here


class TestExample7:
    def test_backchase_agrees_with_query_elimination(self):
        backchase = ChaseBackchase(example6_rules())
        minimal = backchase.minimize(example7_query())
        assert len(minimal.body) <= 2


class TestGeneralBehaviour:
    def test_minimal_query_is_returned_unchanged(self):
        rules = [tgd(Atom.of("p", X), Atom.of("q", X))]
        query = ConjunctiveQuery([Atom.of("p", A)], (A,))
        assert backchase_minimize(query, rules).body == query.body

    def test_redundant_atom_under_constraints_is_dropped(self):
        rules = [tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y))]
        query = ConjunctiveQuery([Atom.of("has_stock", A, B), Atom.of("stock", B)], (A,))
        minimal = backchase_minimize(query, rules)
        assert minimal.body == (Atom.of("has_stock", A, B),)

    def test_reformulations_are_contained_in_the_universal_plan(self):
        backchase = ChaseBackchase(example6_rules())
        result = backchase.reformulate(example7_query())
        for reformulation in result.reformulations:
            assert set(reformulation.body) <= set(result.universal_plan.body)

    def test_supersets_of_found_reformulations_are_skipped(self):
        rules = [tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y))]
        query = ConjunctiveQuery([Atom.of("has_stock", A, B), Atom.of("stock", B)], (A,))
        result = ChaseBackchase(rules).reformulate(query)
        sizes = sorted(len(r.body) for r in result.reformulations)
        # The one-atom reformulation is found; the original two-atom query is
        # a superset of it and therefore not reported.
        assert sizes == [1]

    def test_answer_variables_constrain_candidates(self):
        rules = [tgd(Atom.of("has_stock", X, Y), Atom.of("stock", Y))]
        query = ConjunctiveQuery([Atom.of("has_stock", A, B), Atom.of("stock", B)], (B,))
        result = ChaseBackchase(rules).reformulate(query)
        for reformulation in result.reformulations:
            assert B in reformulation.variables

    def test_reformulations_are_classically_contained_in_the_original(self):
        # Under the constraints they are equivalent; without constraints each
        # reformulation (built from chased atoms) is at least as specific.
        backchase = ChaseBackchase(example6_rules())
        query = example8_query()
        for reformulation in backchase.reformulate(query).reformulations:
            assert is_contained_in(query, reformulation) or len(reformulation.body) <= len(
                query.body
            )

    def test_accepts_a_theory(self):
        theory = OntologyTheory(tgds=example6_rules())
        assert ChaseBackchase(theory).rules == tuple(theory.tgds)

    def test_bounded_chase_on_cyclic_rules_still_terminates(self):
        rules = [
            tgd(Atom.of("person", X), Atom.of("parent", X, Y)),
            tgd(Atom.of("parent", X, Y), Atom.of("person", Y)),
        ]
        query = ConjunctiveQuery([Atom.of("person", A), Atom.of("parent", A, B)], (A,))
        result = ChaseBackchase(rules, max_chase_depth=3).reformulate(query)
        assert result.minimal_size <= 2
