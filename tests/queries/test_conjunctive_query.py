"""Tests for conjunctive queries."""

import pytest
from hypothesis import given

from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery, boolean_query

from ..conftest import boolean_queries

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")
a, b = Constant("a"), Constant("b")


class TestConstruction:
    def test_duplicate_body_atoms_are_collapsed(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("r", A, B)], ())
        assert len(query.body) == 1

    def test_body_order_is_preserved(self):
        query = ConjunctiveQuery([Atom.of("p", A), Atom.of("q", A, B)], ())
        assert [atom.name for atom in query.body] == ["p", "q"]

    def test_answer_variable_must_occur_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([Atom.of("p", A)], (B,))

    def test_answer_constants_are_allowed(self):
        query = ConjunctiveQuery([Atom.of("p", A)], (a,))
        assert query.answer_terms == (a,)

    def test_boolean_query_helper(self):
        query = boolean_query([Atom.of("p", A)])
        assert query.is_boolean
        assert query.arity == 0

    def test_head_atom(self):
        query = ConjunctiveQuery([Atom.of("r", A, B)], (A, B), head_name="ans")
        assert query.head == Atom.of("ans", A, B)


class TestVariableClassification:
    def setup_method(self):
        # q(A) <- r(A, B), s(B, C), p(a)
        self.query = ConjunctiveQuery(
            [Atom.of("r", A, B), Atom.of("s", B, C), Atom.of("p", a)], (A,)
        )

    def test_variables(self):
        assert self.query.variables == {A, B, C}

    def test_answer_and_existential_variables(self):
        assert self.query.answer_variables == {A}
        assert self.query.existential_variables == {B, C}

    def test_constants(self):
        assert self.query.constants == {a}

    def test_shared_variables_count_head_occurrences(self):
        # A occurs once in the body and once in the head -> shared (the paper
        # counts head occurrences for non-Boolean CQs).
        assert self.query.is_shared(A)
        assert self.query.is_shared(B)
        assert not self.query.is_shared(C)
        assert not self.query.is_shared(a)

    def test_variable_occurrences(self):
        occurrences = self.query.variable_occurrences
        assert occurrences[A] == 2
        assert occurrences[B] == 2
        assert occurrences[C] == 1

    def test_boolean_query_sharing_ignores_missing_head(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B, C)], ())
        assert query.is_shared(B)
        assert not query.is_shared(A)


class TestTransformations:
    def test_apply_substitutes_body_and_head(self):
        query = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        image = query.apply(Substitution({A: C}))
        assert image.body == (Atom.of("r", C, B),)
        assert image.answer_terms == (C,)

    def test_apply_accepts_plain_mappings(self):
        query = ConjunctiveQuery([Atom.of("r", A, B)], ())
        assert query.apply({A: a}).body == (Atom.of("r", a, B),)

    def test_replace_atoms(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("p", A)], (A,))
        replaced = query.replace_atoms([Atom.of("p", A)], [Atom.of("q", A, C)])
        assert Atom.of("q", A, C) in replaced.body
        assert Atom.of("p", A) not in replaced.body

    def test_drop_atoms(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("p", A)], (A,))
        assert query.drop_atoms([Atom.of("p", A)]).body == (Atom.of("r", A, B),)

    def test_with_body(self):
        query = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        rebuilt = query.with_body([Atom.of("s", A, C)])
        assert rebuilt.body == (Atom.of("s", A, C),)
        assert rebuilt.answer_terms == (A,)

    def test_rename_variables_produces_variant(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B, C)], (A,))
        renamed = query.rename_variables(prefix="N")
        assert renamed.is_variant_of(query)
        assert renamed.variables.isdisjoint({B, C}) or renamed.variables == query.variables

    def test_freeze_produces_ground_body(self):
        query = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        frozen_body, freezing = query.freeze()
        assert all(atom.is_fact() for atom in frozen_body)
        assert freezing.apply_term(A) != A


class TestVariants:
    def test_renamed_queries_are_variants(self):
        first = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        second = ConjunctiveQuery([Atom.of("r", C, D)], (C,))
        assert first.is_variant_of(second)
        assert second.is_variant_of(first)

    def test_head_must_be_mapped_positionally(self):
        first = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        second = ConjunctiveQuery([Atom.of("r", C, D)], (D,))
        assert not first.is_variant_of(second)

    def test_different_arities_are_never_variants(self):
        first = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        second = ConjunctiveQuery([Atom.of("r", A, B)], (A, B))
        assert not first.is_variant_of(second)

    def test_structurally_different_bodies_are_not_variants(self):
        first = ConjunctiveQuery([Atom.of("r", A, A)], ())
        second = ConjunctiveQuery([Atom.of("r", A, B)], ())
        assert not first.is_variant_of(second)

    def test_constants_distinguish_variants(self):
        first = ConjunctiveQuery([Atom.of("r", A, a)], ())
        second = ConjunctiveQuery([Atom.of("r", A, b)], ())
        assert not first.is_variant_of(second)

    def test_signature_is_invariant_under_renaming(self):
        first = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("p", B)], (A,))
        second = first.rename_variables(prefix="Z")
        assert first.signature == second.signature


class TestVariantProperties:
    @given(boolean_queries())
    def test_every_query_is_a_variant_of_itself(self, query):
        assert query.is_variant_of(query)

    @given(boolean_queries())
    def test_renaming_preserves_variance(self, query):
        assert query.rename_variables(prefix="H").is_variant_of(query)
