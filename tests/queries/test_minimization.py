"""Tests for constraint-free CQ minimisation (query cores)."""

from hypothesis import given

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.containment import are_equivalent
from repro.queries.minimization import is_minimal, minimize, redundant_atoms

from ..conftest import boolean_queries

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")
a = Constant("a")


class TestMinimize:
    def test_duplicate_pattern_is_folded(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("r", A, C)], (A,))
        core = minimize(query)
        assert len(core.body) == 1
        assert are_equivalent(core, query)

    def test_already_minimal_query_is_unchanged(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B, C)], (A,))
        assert minimize(query).body == query.body

    def test_answer_variables_block_folding(self):
        # r(A, B) cannot be dropped because B is an answer variable, while the
        # purely existential r(A, C) folds onto it and disappears.
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("r", A, C)], (A, B))
        assert minimize(query).body == (Atom.of("r", A, B),)

    def test_constants_block_folding(self):
        query = ConjunctiveQuery([Atom.of("r", A, a), Atom.of("r", A, B)], (A,))
        core = minimize(query)
        # r(A, B) folds onto r(A, a), but not the other way around.
        assert core.body == (Atom.of("r", A, a),)

    def test_triangle_versus_edge(self):
        # The classic example: a triangle query is its own core.
        triangle = ConjunctiveQuery(
            [Atom.of("e", A, B), Atom.of("e", B, C), Atom.of("e", C, A)], ()
        )
        assert len(minimize(triangle).body) == 3

    def test_path_with_redundant_tail(self):
        query = ConjunctiveQuery(
            [Atom.of("e", A, B), Atom.of("e", A, C), Atom.of("p", B)], (A,)
        )
        core = minimize(query)
        assert len(core.body) == 2
        assert Atom.of("p", B) in core.body


class TestHelpers:
    def test_is_minimal(self):
        assert is_minimal(ConjunctiveQuery([Atom.of("r", A, B)], (A,)))
        assert not is_minimal(
            ConjunctiveQuery([Atom.of("r", A, B), Atom.of("r", A, C)], (A,))
        )

    def test_redundant_atoms_reports_dropped_atoms(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("r", A, C)], (A,))
        dropped = redundant_atoms(query)
        assert len(dropped) == 1
        assert next(iter(dropped)).name == "r"


class TestMinimizationProperties:
    @given(boolean_queries())
    def test_core_is_equivalent_to_the_query(self, query):
        core = minimize(query)
        assert are_equivalent(core, query)

    @given(boolean_queries())
    def test_core_never_grows(self, query):
        assert len(minimize(query).body) <= len(query.body)

    @given(boolean_queries())
    def test_minimization_is_idempotent(self, query):
        core = minimize(query)
        assert len(minimize(core).body) == len(core.body)
