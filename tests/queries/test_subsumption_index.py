"""Index-guided subsumption: same survivors, far fewer searches.

``remove_subsumed`` now freezes and indexes each member once, pre-filters
candidate pairs with necessary conditions (predicate buckets, argument
signatures, answer anchoring, canonical keys) and only then runs the
backtracking homomorphism search.  These tests pin

* agreement with the naive implementation on randomly generated UCQs
  (the pre-filters are *necessary* conditions, so they may never change
  the outcome), and
* the regression target on the Vicodi workload: at least 30% fewer
  homomorphism searches than the naive pair loop.
"""

import random

import pytest

from repro.core.rewriter import TGDRewriter
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.containment import (
    ContainmentIndex,
    SubsumptionStatistics,
    containment_mapping,
    is_contained_in,
)
from repro.queries.parser import parse_query
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.workloads import get_workload

PREDICATES = (("p", 1), ("q", 2), ("r", 2), ("s", 1))
VARIABLES = tuple(Variable(name) for name in ("X", "Y", "Z", "V"))
CONSTANTS = (Constant("a"), Constant("b"))


def random_query(rng: random.Random, arity: int) -> ConjunctiveQuery:
    """A small random CQ; the answer variable always occurs in the body."""
    answer = VARIABLES[0]
    body = []
    for _ in range(rng.randint(1, 4)):
        name, predicate_arity = rng.choice(PREDICATES)
        terms = tuple(
            rng.choice(VARIABLES + CONSTANTS) for _ in range(predicate_arity)
        )
        body.append(Atom.of(name, *terms))
    if arity:
        name, predicate_arity = rng.choice(PREDICATES)
        terms = [answer] + [
            rng.choice(VARIABLES + CONSTANTS) for _ in range(predicate_arity - 1)
        ]
        body.append(Atom.of(name, *terms[:predicate_arity]))
        return ConjunctiveQuery(body, (answer,))
    return ConjunctiveQuery(body, ())


class TestIndexedContainmentAgreesWithNaive:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("arity", [0, 1])
    def test_pairwise_containment_agrees(self, seed, arity):
        rng = random.Random(seed)
        queries = [random_query(rng, arity) for _ in range(6)]
        for query in queries:
            index = ContainmentIndex(query)
            for other in queries:
                indexed = is_contained_in(query, other, index=index)
                naive = is_contained_in(query, other, prefilter=False)
                assert indexed == naive, (query, other)

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("arity", [0, 1])
    def test_remove_subsumed_agrees_with_naive(self, seed, arity):
        rng = random.Random(1000 + seed)
        ucq = UnionOfConjunctiveQueries(
            [random_query(rng, arity) for _ in range(rng.randint(2, 8))]
        )
        assert list(ucq.remove_subsumed()) == list(ucq.remove_subsumed_naive())

    def test_mapping_is_a_real_containment_witness(self):
        general = parse_query("q(A) :- r(A, B)")
        specific = parse_query("q(A) :- r(A, A), p(A)")
        mapping = containment_mapping(
            general, specific, index=ContainmentIndex(specific)
        )
        assert mapping is not None
        assert {mapping.apply_atom(atom) for atom in general.body} <= set(
            specific.body
        )

    def test_prefilter_skips_are_sound(self):
        # A pair the argument-signature filter rejects: the container
        # needs a constant the target never holds at that position.
        container = parse_query("q() :- p(a)")
        target = parse_query("q() :- p(b)")
        statistics = SubsumptionStatistics()
        assert (
            containment_mapping(
                container,
                target,
                index=ContainmentIndex(target),
                statistics=statistics,
            )
            is None
        )
        assert statistics.skipped_by_prefilter == 1
        assert statistics.homomorphism_searches == 0
        assert containment_mapping(container, target, prefilter=False) is None

    def test_canonical_fast_path_fires_for_variants(self):
        first = parse_query("q(A) :- r(A, B), p(B)")
        second = parse_query("q(C) :- r(C, D), p(D)")
        statistics = SubsumptionStatistics()
        assert is_contained_in(first, second, statistics=statistics)
        assert statistics.canonical_fast_paths == 1
        assert statistics.homomorphism_searches == 0


class TestVicodiSearchReduction:
    """The acceptance regression: ≥ 30% fewer searches on Vicodi."""

    def test_indexed_subsumption_searches_at_least_30_percent_less(self):
        workload = get_workload("V")
        engine = TGDRewriter(workload.theory.tgds)
        naive = SubsumptionStatistics()
        indexed = SubsumptionStatistics()
        for name in workload.query_names:
            ucq = engine.rewrite(workload.query(name)).ucq
            assert list(ucq.remove_subsumed(indexed)) == list(
                ucq.remove_subsumed_naive(naive)
            ), name
        assert naive.homomorphism_searches > 0
        reduction = 1 - indexed.homomorphism_searches / naive.homomorphism_searches
        assert reduction >= 0.30, (
            f"only {reduction:.1%} fewer homomorphism searches "
            f"({indexed.homomorphism_searches} vs {naive.homomorphism_searches})"
        )
        # Both paths asked the same containment questions.
        assert indexed.pairs_considered == naive.pairs_considered
