"""Tests for the textual conjunctive-query syntax."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.parser import QuerySyntaxError, parse_query, parse_term

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")


class TestParseTerm:
    def test_uppercase_identifiers_are_variables(self):
        assert parse_term("A") == Variable("A")
        assert parse_term("Company") == Variable("Company")

    def test_lowercase_identifiers_are_constants(self):
        assert parse_term("acme") == Constant("acme")
        assert parse_term("nasdaq_100") == Constant("nasdaq_100")

    def test_numbers_are_integer_constants(self):
        assert parse_term("42") == Constant(42)
        assert parse_term("-3") == Constant(-3)

    def test_quoted_strings_are_constants(self):
        assert parse_term("'Mixed Case'") == Constant("Mixed Case")
        assert parse_term('"IBM"') == Constant("IBM")

    def test_unterminated_quote_is_an_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_term("'oops")

    def test_empty_term_is_an_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_term("   ")


class TestParseQuery:
    def test_paper_running_query(self):
        query = parse_query(
            "q(A, B, C) :- fin_ins(A), stock_portf(B, A, D), company(B, E, F), "
            "list_comp(A, C), fin_idx(C, G, H)"
        )
        assert query.arity == 3
        assert len(query.body) == 5
        assert query.answer_terms == (A, B, C)
        assert Atom.of("stock_portf", B, A, D) in query.body

    def test_boolean_query_with_separator(self):
        query = parse_query(":- t(A, B, c), r(B, c)")
        assert query.is_boolean
        assert Atom.of("t", A, B, Constant("c")) in query.body

    def test_boolean_query_without_separator(self):
        query = parse_query("person(A), works_for(A, acme)")
        assert query.is_boolean
        assert len(query.body) == 2

    def test_alternative_arrow(self):
        query = parse_query("q(A) <- person(A)")
        assert query.answer_terms == (A,)

    def test_head_name_is_kept(self):
        assert parse_query("answers(A) :- person(A)").head_name == "answers"

    def test_bare_head_name_denotes_a_bcq(self):
        query = parse_query("q :- person(A)")
        assert query.is_boolean
        assert query.head_name == "q"

    def test_constants_in_the_head(self):
        query = parse_query("q(A, acme) :- works_for(A, acme)")
        assert query.answer_terms == (A, Constant("acme"))

    def test_round_trip_with_repr_style_query(self):
        query = parse_query("q(A, B) :- r(A, B), s(B, 'x y')")
        assert query.constants == {Constant("x y")}

    def test_empty_query_is_an_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_empty_body_is_an_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(A) :- ")

    def test_malformed_body_is_an_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(A) :- person(A) works_for(A, B)")
        with pytest.raises(QuerySyntaxError):
            parse_query("q(A) :- person A")

    def test_atom_without_arguments_is_an_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(A) :- person(), r(A)")

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(ValueError):
            parse_query("q(A, Z) :- person(A)")

    def test_parsed_query_is_rewritable(self):
        from repro.core.rewriter import rewrite
        from repro.dependencies.tgd import tgd

        X = Variable("X")
        rules = [tgd(Atom.of("student", X), Atom.of("person", X))]
        result = rewrite(parse_query("q(A) :- person(A)"), rules)
        assert len(result.ucq) == 2
