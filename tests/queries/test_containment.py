"""Tests for Chandra–Merlin containment and equivalence of CQs."""

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.containment import (
    are_equivalent,
    body_maps_into,
    containment_mapping,
    is_contained_in,
)

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")
a = Constant("a")


class TestContainment:
    def test_more_specific_query_is_contained_in_more_general(self):
        general = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        specific = ConjunctiveQuery([Atom.of("r", A, A)], (A,))
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_extra_atoms_make_a_query_more_specific(self):
        small = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        large = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("p", B)], (A,))
        assert is_contained_in(large, small)
        assert not is_contained_in(small, large)

    def test_constants_restrict_containment(self):
        with_constant = ConjunctiveQuery([Atom.of("r", A, a)], (A,))
        general = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        assert is_contained_in(with_constant, general)
        assert not is_contained_in(general, with_constant)

    def test_different_arity_queries_are_incomparable(self):
        unary = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        binary = ConjunctiveQuery([Atom.of("r", A, B)], (A, B))
        assert not is_contained_in(unary, binary)
        assert not is_contained_in(binary, unary)

    def test_answer_terms_must_be_preserved(self):
        first = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        flipped = ConjunctiveQuery([Atom.of("r", A, B)], (B,))
        assert not is_contained_in(first, flipped)

    def test_classic_path_example(self):
        # A length-2 path query is contained in the length-1 path query (as
        # Boolean queries) but not vice versa over the same relation.
        path1 = ConjunctiveQuery([Atom.of("e", A, B)], ())
        path2 = ConjunctiveQuery([Atom.of("e", A, B), Atom.of("e", B, C)], ())
        assert is_contained_in(path2, path1)
        assert not is_contained_in(path1, path2)

    def test_cycle_is_contained_in_path(self):
        cycle = ConjunctiveQuery([Atom.of("e", A, B), Atom.of("e", B, A)], ())
        path = ConjunctiveQuery([Atom.of("e", A, B), Atom.of("e", B, C)], ())
        assert is_contained_in(cycle, path)
        assert not is_contained_in(path, cycle)


class TestContainmentMapping:
    def test_mapping_witnesses_containment(self):
        general = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        specific = ConjunctiveQuery([Atom.of("r", C, C)], (C,))
        mapping = containment_mapping(general, specific)
        assert mapping is not None
        assert mapping.apply_term(A) == C
        assert mapping.apply_term(B) == C

    def test_no_mapping_when_not_contained(self):
        general = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        other = ConjunctiveQuery([Atom.of("s", C, C)], (C,))
        assert containment_mapping(general, other) is None


class TestEquivalence:
    def test_renamed_queries_are_equivalent(self):
        first = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("p", B)], (A,))
        second = ConjunctiveQuery([Atom.of("r", C, D), Atom.of("p", D)], (C,))
        assert are_equivalent(first, second)

    def test_redundant_atom_preserves_equivalence(self):
        minimal = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        redundant = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("r", A, C)], (A,))
        assert are_equivalent(minimal, redundant)

    def test_non_equivalent_queries(self):
        first = ConjunctiveQuery([Atom.of("r", A, B)], (A,))
        second = ConjunctiveQuery([Atom.of("r", B, A)], (A,))
        assert not are_equivalent(first, second)


class TestBodyMapsInto:
    def test_body_embedding_ignores_answer_terms(self):
        source = ConjunctiveQuery([Atom.of("r", A, B)], ())
        target = ConjunctiveQuery([Atom.of("r", C, D), Atom.of("p", C)], (C,))
        assert body_maps_into(source, target)

    def test_no_embedding_without_matching_atoms(self):
        source = ConjunctiveQuery([Atom.of("q", A)], ())
        target = ConjunctiveQuery([Atom.of("r", C, D)], ())
        assert not body_maps_into(source, target)
