"""Tests for unions of conjunctive queries and the variant-deduplicating store."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import QuerySet, UnionOfConjunctiveQueries, union

A, B, C = Variable("A"), Variable("B"), Variable("C")


def _cq(*atoms, answers=()):
    return ConjunctiveQuery(list(atoms), answers)


class TestUnionOfConjunctiveQueries:
    def test_mixed_arities_are_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries(
                [_cq(Atom.of("p", A), answers=(A,)), _cq(Atom.of("p", A))]
            )

    def test_iteration_and_indexing(self):
        members = [_cq(Atom.of("p", A)), _cq(Atom.of("q", A, B))]
        ucq = UnionOfConjunctiveQueries(members)
        assert len(ucq) == 2
        assert ucq[0] is members[0]
        assert list(ucq) == members

    def test_contains_variant(self):
        ucq = UnionOfConjunctiveQueries([_cq(Atom.of("r", A, B))])
        assert ucq.contains_variant(_cq(Atom.of("r", B, C)))
        assert not ucq.contains_variant(_cq(Atom.of("r", A, A)))

    def test_deduplicate_removes_variants(self):
        ucq = UnionOfConjunctiveQueries(
            [_cq(Atom.of("r", A, B)), _cq(Atom.of("r", B, C)), _cq(Atom.of("r", A, A))]
        )
        assert len(ucq.deduplicate()) == 2

    def test_empty_union(self):
        ucq = UnionOfConjunctiveQueries([])
        assert len(ucq) == 0
        assert ucq.arity == 0

    def test_remove_subsumed_drops_contained_members(self):
        general = _cq(Atom.of("r", A, B), answers=(A,))
        specific = _cq(Atom.of("r", A, A), answers=(A,))
        pruned = UnionOfConjunctiveQueries([general, specific]).remove_subsumed()
        assert len(pruned) == 1
        assert pruned[0].is_variant_of(general)

    def test_remove_subsumed_keeps_incomparable_members(self):
        first = _cq(Atom.of("p", A), answers=(A,))
        second = _cq(Atom.of("q", A, B), answers=(A,))
        assert len(UnionOfConjunctiveQueries([first, second]).remove_subsumed()) == 2

    def test_remove_subsumed_keeps_one_of_two_equivalent_members(self):
        first = _cq(Atom.of("r", A, B), answers=(A,))
        second = _cq(Atom.of("r", A, C), answers=(A,))
        assert len(UnionOfConjunctiveQueries([first, second]).remove_subsumed()) == 1


class TestQuerySet:
    def test_add_rejects_variants(self):
        store = QuerySet()
        assert store.add(_cq(Atom.of("r", A, B)))
        assert not store.add(_cq(Atom.of("r", B, C)))
        assert len(store) == 1

    def test_add_accepts_non_variants(self):
        store = QuerySet()
        store.add(_cq(Atom.of("r", A, B)))
        assert store.add(_cq(Atom.of("r", A, A)))
        assert len(store) == 2

    def test_find_variant_returns_stored_query(self):
        stored = _cq(Atom.of("r", A, B))
        store = QuerySet([stored])
        assert store.find_variant(_cq(Atom.of("r", C, B))) is stored
        assert store.find_variant(_cq(Atom.of("p", A))) is None

    def test_contains_uses_variant_semantics(self):
        store = QuerySet([_cq(Atom.of("r", A, B))])
        assert _cq(Atom.of("r", B, A)) in store

    def test_insertion_order_is_preserved(self):
        first, second = _cq(Atom.of("p", A)), _cq(Atom.of("q", A, B))
        store = QuerySet([first, second])
        assert list(store) == [first, second]

    def test_to_ucq_round_trip(self):
        store = QuerySet([_cq(Atom.of("p", A))])
        assert len(store.to_ucq()) == 1


class TestUnionHelper:
    def test_union_deduplicates(self):
        result = union([_cq(Atom.of("r", A, B)), _cq(Atom.of("r", B, C))])
        assert len(result) == 1
