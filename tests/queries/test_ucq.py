"""Tests for unions of conjunctive queries and the variant-interning store."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import QuerySet, UnionOfConjunctiveQueries, union

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")


def _cq(*atoms, answers=()):
    return ConjunctiveQuery(list(atoms), answers)


class TestUnionOfConjunctiveQueries:
    def test_mixed_arities_are_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries(
                [_cq(Atom.of("p", A), answers=(A,)), _cq(Atom.of("p", A))]
            )

    def test_iteration_and_indexing(self):
        members = [_cq(Atom.of("p", A)), _cq(Atom.of("q", A, B))]
        ucq = UnionOfConjunctiveQueries(members)
        assert len(ucq) == 2
        assert ucq[0] is members[0]
        assert list(ucq) == members

    def test_contains_variant(self):
        ucq = UnionOfConjunctiveQueries([_cq(Atom.of("r", A, B))])
        assert ucq.contains_variant(_cq(Atom.of("r", B, C)))
        assert not ucq.contains_variant(_cq(Atom.of("r", A, A)))

    def test_deduplicate_removes_variants(self):
        ucq = UnionOfConjunctiveQueries(
            [_cq(Atom.of("r", A, B)), _cq(Atom.of("r", B, C)), _cq(Atom.of("r", A, A))]
        )
        assert len(ucq.deduplicate()) == 2

    def test_empty_union(self):
        ucq = UnionOfConjunctiveQueries([])
        assert len(ucq) == 0
        assert ucq.arity == 0

    def test_remove_subsumed_drops_contained_members(self):
        general = _cq(Atom.of("r", A, B), answers=(A,))
        specific = _cq(Atom.of("r", A, A), answers=(A,))
        pruned = UnionOfConjunctiveQueries([general, specific]).remove_subsumed()
        assert len(pruned) == 1
        assert pruned[0].is_variant_of(general)

    def test_remove_subsumed_keeps_incomparable_members(self):
        first = _cq(Atom.of("p", A), answers=(A,))
        second = _cq(Atom.of("q", A, B), answers=(A,))
        assert len(UnionOfConjunctiveQueries([first, second]).remove_subsumed()) == 2

    def test_remove_subsumed_keeps_one_of_two_equivalent_members(self):
        first = _cq(Atom.of("r", A, B), answers=(A,))
        second = _cq(Atom.of("r", A, C), answers=(A,))
        assert len(UnionOfConjunctiveQueries([first, second]).remove_subsumed()) == 1


class TestQuerySet:
    def test_add_rejects_variants(self):
        store = QuerySet()
        assert store.add(_cq(Atom.of("r", A, B)))
        assert not store.add(_cq(Atom.of("r", B, C)))
        assert len(store) == 1

    def test_add_accepts_non_variants(self):
        store = QuerySet()
        store.add(_cq(Atom.of("r", A, B)))
        assert store.add(_cq(Atom.of("r", A, A)))
        assert len(store) == 2

    def test_find_variant_returns_stored_query(self):
        stored = _cq(Atom.of("r", A, B))
        store = QuerySet([stored])
        assert store.find_variant(_cq(Atom.of("r", C, B))) is stored
        assert store.find_variant(_cq(Atom.of("p", A))) is None

    def test_contains_uses_variant_semantics(self):
        store = QuerySet([_cq(Atom.of("r", A, B))])
        assert _cq(Atom.of("r", B, A)) in store

    def test_insertion_order_is_preserved(self):
        first, second = _cq(Atom.of("p", A)), _cq(Atom.of("q", A, B))
        store = QuerySet([first, second])
        assert list(store) == [first, second]

    def test_to_ucq_round_trip(self):
        store = QuerySet([_cq(Atom.of("p", A))])
        assert len(store.to_ucq()) == 1


class TestUnionHelper:
    def test_union_deduplicates(self):
        result = union([_cq(Atom.of("r", A, B)), _cq(Atom.of("r", B, C))])
        assert len(result) == 1


class TestUcqEdgeCases:
    def test_empty_ucq_survives_every_operation(self):
        empty = UnionOfConjunctiveQueries([])
        assert len(empty.deduplicate()) == 0
        assert len(empty.remove_subsumed()) == 0
        assert not empty.contains_variant(_cq(Atom.of("p", A)))
        assert repr(empty) == "<empty UCQ>"

    def test_mixed_arity_rejected_even_with_variant_bodies(self):
        unary = _cq(Atom.of("r", A, B), answers=(A,))
        binary = _cq(Atom.of("r", A, B), answers=(A, B))
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([unary, binary])

    def test_remove_subsumed_result_is_order_independent(self):
        """The surviving set must not depend on member presentation order."""
        general = _cq(Atom.of("r", A, B), answers=(A,))
        specific = _cq(Atom.of("r", A, A), answers=(A,))
        other = _cq(Atom.of("p", A), answers=(A,))
        forwards = UnionOfConjunctiveQueries([general, specific, other]).remove_subsumed()
        backwards = UnionOfConjunctiveQueries([other, specific, general]).remove_subsumed()
        assert len(forwards) == len(backwards) == 2
        assert {repr(q) for q in forwards} == {repr(q) for q in backwards}

    def test_remove_subsumed_with_chained_containments(self):
        """Transitive subsumption keeps only the most general member."""
        most_general = _cq(Atom.of("r", A, B), answers=(A,))
        middle = _cq(Atom.of("r", A, B), Atom.of("r", B, C), answers=(A,))
        most_specific = _cq(
            Atom.of("r", A, B), Atom.of("r", B, C), Atom.of("r", C, D), answers=(A,)
        )
        pruned = UnionOfConjunctiveQueries(
            [most_specific, middle, most_general]
        ).remove_subsumed()
        assert len(pruned) == 1
        assert pruned[0].is_variant_of(most_general)

    def test_remove_subsumed_ignores_disjoint_predicate_buckets(self):
        """Members over unrelated predicates can never subsume each other."""
        queries = [
            _cq(Atom.of(name, A, B), answers=(A,)) for name in ("r", "s", "t")
        ]
        assert len(UnionOfConjunctiveQueries(queries).remove_subsumed()) == 3


class TestQuerySetInterning:
    def test_duplicate_insertion_is_idempotent(self):
        store = QuerySet()
        query = _cq(Atom.of("r", A, B))
        assert store.add(query)
        for _ in range(3):
            assert not store.add(query)
        assert len(store) == 1
        assert store.statistics.hits == 3

    def test_intern_returns_the_stored_representative(self):
        store = QuerySet()
        original = _cq(Atom.of("r", A, B))
        stored, inserted = store.intern(original)
        assert stored is original and inserted
        variant = _cq(Atom.of("r", C, D))
        stored, inserted = store.intern(variant)
        assert stored is original and not inserted

    def test_statistics_track_lookups_hits_and_misses(self):
        store = QuerySet()
        store.add(_cq(Atom.of("r", A, B)))          # miss, insert
        store.add(_cq(Atom.of("r", B, C)))          # hit (variant)
        store.find_variant(_cq(Atom.of("p", A)))    # miss
        statistics = store.statistics
        assert statistics.lookups == 3
        assert statistics.hits == 1
        assert statistics.misses == 2

    def test_exact_hits_skip_confirmation(self):
        """Queries with discrete colourings are matched by key equality only."""
        store = QuerySet()
        store.add(_cq(Atom.of("r", A, B), Atom.of("s", B)))
        assert store.find_variant(_cq(Atom.of("r", C, D), Atom.of("s", D))) is not None
        assert store.statistics.exact_hits == 1
        assert store.statistics.confirmations == 0

    def test_bucket_properties(self):
        store = QuerySet()
        store.add(_cq(Atom.of("r", A, B)))
        store.add(_cq(Atom.of("r", A, A)))
        assert store.bucket_count == 2
        assert store.max_bucket_size == 1
        assert QuerySet().bucket_count == 0
        assert QuerySet().max_bucket_size == 0

    def test_mixed_arity_queries_coexist_until_frozen(self):
        """QuerySet accepts mixed arities; the UCQ freeze rejects them."""
        store = QuerySet()
        store.add(_cq(Atom.of("r", A, B), answers=(A,)))
        store.add(_cq(Atom.of("r", A, B), answers=(A, B)))
        assert len(store) == 2
        with pytest.raises(ValueError):
            store.to_ucq()
