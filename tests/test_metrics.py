"""Tests for the Table 1 rewriting metrics (size, length, width)."""

from hypothesis import given

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.metrics import (
    RewritingMetrics,
    format_table,
    metrics_table_row,
    query_length,
    query_width,
    ucq_metrics,
)
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

from .conftest import boolean_queries

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")


class TestQueryMetrics:
    def test_single_atom_query_has_width_zero(self):
        # Table 1, VICODI q1: 15 single-atom CQs have length 15 and width 0.
        query = ConjunctiveQuery([Atom.of("Location", A)], (A,))
        assert query_length(query) == 1
        assert query_width(query) == 0

    def test_one_join_between_two_atoms(self):
        query = ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B, C)], (A,))
        assert query_width(query) == 1

    def test_three_occurrences_count_two_joins(self):
        query = ConjunctiveQuery(
            [Atom.of("r", A, B), Atom.of("s", B, C), Atom.of("t", B, D)], (A,)
        )
        assert query_width(query) == 2

    def test_head_occurrences_are_not_joins(self):
        query = ConjunctiveQuery([Atom.of("r", A, B)], (A, B))
        assert query_width(query) == 0

    def test_repeated_variable_inside_one_atom_is_a_join(self):
        query = ConjunctiveQuery([Atom.of("r", A, A)], ())
        assert query_width(query) == 1

    def test_constants_never_contribute_joins(self):
        query = ConjunctiveQuery(
            [Atom.of("r", A, Constant("c")), Atom.of("s", Constant("c"))], ()
        )
        assert query_width(query) == 0

    def test_running_example_reduced_query_width(self):
        # Section 1: the optimised rewriting executes "only two joins" — one
        # per CQ, both on the stock identifier.
        from repro.workloads import stock_exchange_example

        reduced = stock_exchange_example.reduced_query()
        assert query_width(reduced) == 1
        assert query_length(reduced) == 2


class TestUCQMetrics:
    def test_sums_over_members(self):
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery([Atom.of("r", A, B), Atom.of("s", B, C)], (A,)),
                ConjunctiveQuery([Atom.of("p", A)], (A,)),
            ]
        )
        metrics = ucq_metrics(ucq)
        assert metrics == RewritingMetrics(size=2, length=3, width=1)
        assert metrics.as_row() == (2, 3, 1)

    def test_empty_rewriting(self):
        assert ucq_metrics([]) == RewritingMetrics(size=0, length=0, width=0)

    def test_table_row_and_formatting(self):
        ucq = [ConjunctiveQuery([Atom.of("p", A)], (A,))]
        row = metrics_table_row("q1", {"NY": ucq, "NY*": ucq})
        assert row["NY_size"] == 1
        assert row["NY*_width"] == 0
        table = format_table([row], systems=["NY", "NY*"])
        assert "q1" in table and "NY*_size" in table


class TestMetricProperties:
    @given(boolean_queries())
    def test_metrics_are_non_negative_and_consistent(self, query):
        metrics = ucq_metrics([query])
        assert metrics.size == 1
        assert metrics.length == len(query.body)
        assert 0 <= metrics.width <= sum(atom.arity for atom in query.body)

    @given(boolean_queries(), boolean_queries())
    def test_metrics_are_additive(self, first, second):
        union = ucq_metrics([first, second])
        alone = ucq_metrics([first]), ucq_metrics([second])
        assert union.size == alone[0].size + alone[1].size
        assert union.length == alone[0].length + alone[1].length
        assert union.width == alone[0].width + alone[1].width
