"""Tests for the Table 1 evaluation driver."""

import pytest

from repro.evaluation import SYSTEMS, Table1Evaluator, evaluate_workload, format_rows
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.dependencies.tgd import TGD, tgd
from repro.dependencies.theory import OntologyTheory
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads.registry import Workload

A, B = Variable("A"), Variable("B")
X, Y = Variable("X"), Variable("Y")


def _workload(auxiliary_public: bool = False) -> Workload:
    """A tiny workload whose rules require normalisation (qualified existential)."""
    theory = OntologyTheory(
        tgds=[
            tgd(Atom.of("student", X), Atom.of("person", X)),
            TGD((Atom.of("person", X),), (Atom.of("enrolled", X, Y), Atom.of("course", Y))),
        ],
        name="tiny",
    )
    queries = {
        "q1": ConjunctiveQuery([Atom.of("person", A)], (A,)),
        "q2": ConjunctiveQuery([Atom.of("enrolled", A, B), Atom.of("course", B)], (A,)),
    }
    workload = Workload(name="T", theory=theory, queries=queries)
    if auxiliary_public:
        return workload.normalized_variant()
    return workload


class TestTable1Evaluator:
    def test_unknown_system_is_rejected(self):
        with pytest.raises(ValueError):
            Table1Evaluator(_workload(), systems=("XX",))

    def test_measure_returns_metrics_and_timing(self):
        evaluator = Table1Evaluator(_workload(), systems=("NY",))
        measurement = evaluator.measure("NY", "q1")
        assert measurement.size == 2
        assert measurement.length == 2
        assert measurement.elapsed_seconds >= 0

    def test_row_covers_all_requested_systems(self):
        evaluator = Table1Evaluator(_workload(), systems=("NY", "NY*"))
        row = evaluator.row("q1")
        assert set(row.cells) == {"NY", "NY*"}
        assert row.cell("NY*").size <= row.cell("NY").size

    def test_rows_follow_query_order(self):
        rows = evaluate_workload(_workload(), systems=("NY",))
        assert [row.query_name for row in rows] == ["q1", "q2"]

    def test_default_systems_are_the_four_of_the_paper(self):
        evaluator = Table1Evaluator(_workload())
        assert evaluator.systems == SYSTEMS

    def test_as_dict_flattens_metrics(self):
        row = Table1Evaluator(_workload(), systems=("NY",)).row("q1")
        flat = row.as_dict()
        assert flat["workload"] == "T"
        assert flat["NY_size"] == 2
        assert "NY_seconds" in flat


class TestAuxiliaryPredicateHandling:
    def test_plain_workload_hides_auxiliary_predicates(self):
        evaluator = Table1Evaluator(_workload(), systems=("NY",))
        ucq = evaluator.rewrite("NY", _workload().query("q2"))
        for cq in ucq:
            assert all(not atom.name.startswith("aux_") for atom in cq.body)

    def test_x_variant_counts_auxiliary_queries(self):
        plain = Table1Evaluator(_workload(), systems=("NY",)).measure("NY", "q2")
        extended = Table1Evaluator(_workload(auxiliary_public=True), systems=("NY",)).measure(
            "NY", "q2"
        )
        assert extended.size >= plain.size


class TestFormatting:
    def test_format_rows_renders_all_metrics(self):
        rows = evaluate_workload(_workload(), systems=("NY", "NY*"))
        text = format_rows(rows, systems=("NY", "NY*"))
        assert "NY_size" in text and "NY*_width" in text
        assert "q1" in text and "q2" in text


class TestAnsweringEvaluator:
    def test_measures_cover_all_queries_and_backends(self):
        from repro.evaluation import ANSWER_BACKENDS, AnsweringEvaluator
        from repro.workloads import get_workload

        evaluator = AnsweringEvaluator(get_workload("S"))
        rows = evaluator.rows(["q1", "q2"])
        assert {(row.query_name, row.backend) for row in rows} == {
            (name, backend)
            for name in ("q1", "q2")
            for backend in ANSWER_BACKENDS
        }
        for row in rows:
            assert row.warm_cached, "the warm execute must hit the answer cache"
            assert row.answers >= 0
        evaluator.close()

    def test_agree_compares_backend_answer_sets(self):
        from repro.evaluation import AnsweringEvaluator
        from repro.workloads import get_workload

        evaluator = AnsweringEvaluator(get_workload("S"))
        assert all(evaluator.agree(name) for name in ("q1", "q2", "q3"))
        evaluator.close()
