# Developer entry points.  `make test` is the tier-1 gate; `make smoke`
# reruns one Table 1 benchmark block as an end-to-end sanity check;
# `make cache-smoke` is the cold-then-warm persistent-cache gate used in CI.

PYTHON ?= python
PYTEST  = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest
REPRO   = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro
CACHE_DIR ?= .cache-smoke

.PHONY: test smoke cache-smoke bench table1

test:
	$(PYTEST) -x -q

smoke:
	$(PYTEST) -q benchmarks/bench_table1_stockexchange.py

cache-smoke:
	rm -rf $(CACHE_DIR)
	$(REPRO) compile --workload S --cache $(CACHE_DIR) --stats
	$(REPRO) compile --workload S --cache $(CACHE_DIR) --stats --fail-on-miss
	rm -rf $(CACHE_DIR)

bench:
	$(PYTEST) -q benchmarks

table1:
	$(REPRO) table1
