# Developer entry points.  `make test` is the tier-1 gate; `make smoke`
# reruns one Table 1 benchmark block as an end-to-end sanity check.

PYTHON ?= python
PYTEST  = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest

.PHONY: test smoke bench table1

test:
	$(PYTEST) -x -q

smoke:
	$(PYTEST) -q benchmarks/bench_table1_stockexchange.py

bench:
	$(PYTEST) -q benchmarks

table1:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro table1
