# Developer entry points.  `make test` is the tier-1 gate; `make smoke`
# reruns one Table 1 benchmark block as an end-to-end sanity check;
# `make cache-smoke` is the cold-then-warm persistent-cache gate used in CI.

PYTHON ?= python
PYTEST  = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest
REPRO   = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro
CACHE_DIR ?= .cache-smoke

.PHONY: test smoke cache-smoke bench bench-json table1

test:
	$(PYTEST) -x -q

smoke:
	$(PYTEST) -q benchmarks/bench_table1_stockexchange.py

cache-smoke:
	rm -rf $(CACHE_DIR)
	$(REPRO) compile --workload S --cache $(CACHE_DIR) --stats
	$(REPRO) compile --workload S --cache $(CACHE_DIR) --stats --fail-on-miss
	rm -rf $(CACHE_DIR)

bench:
	$(PYTEST) -q benchmarks

# Machine-readable perf tracking: cold sequential vs cold parallel vs warm
# over the five Table 1 ontologies (see docs/BENCHMARKS.md).  Non-gating in
# CI; the JSON is uploaded as an artifact.
bench-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/bench_parallel_compile.py --output BENCH_parallel.json

table1:
	$(REPRO) table1
