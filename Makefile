# Developer entry points.  `make test` is the tier-1 gate; `make smoke`
# reruns one Table 1 benchmark block as an end-to-end sanity check;
# `make cache-smoke` is the cold-then-warm persistent-cache gate used in CI;
# `make answer-smoke` answers one workload end-to-end on both execution
# backends and fails on any disagreement; `make strategy-smoke` pins the
# frontier kernel's strategy-independence (sequential vs threaded);
# `make fuzz-smoke` runs a bounded differential-fuzzing pass (generated
# triples through the chase/backend/determinism oracles); `make
# serve-smoke` boots the HTTP serving front end on a real socket and
# checks byte-identical answers, single-compile coalescing and warm
# answer caching; `make subscribe-smoke` drives the standing-query
# lifecycle (subscribe, mutate, poll, verify the answer delta) over a
# real socket; `make chaos-smoke` runs a bounded seeded
# fault-injection pass against the serving stack (deadline, warm-path
# and recovery invariants); `make perf-smoke` pins the hot-path floor
# (auto-strategy rewritings byte-identical to sequential on the running
# example, flat canonical-key kernel never slower than the reference).

PYTHON ?= python
PYTEST  = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest
REPRO   = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro
CACHE_DIR ?= .cache-smoke

.PHONY: test smoke cache-smoke answer-smoke strategy-smoke fuzz-smoke serve-smoke subscribe-smoke chaos-smoke perf-smoke bench bench-json table1

test:
	$(PYTEST) -x -q

smoke:
	$(PYTEST) -q benchmarks/bench_table1_stockexchange.py

cache-smoke:
	rm -rf $(CACHE_DIR)
	$(REPRO) compile --workload S --cache $(CACHE_DIR) --stats
	$(REPRO) compile --workload S --cache $(CACHE_DIR) --stats --fail-on-miss
	rm -rf $(CACHE_DIR)

# End-to-end answering gate: the in-memory evaluator and the SQLite
# backend must return identical answer sets (exit 3 on disagreement), and
# the repeated executions must be served from the per-epoch answer cache.
answer-smoke:
	$(REPRO) answer --workload S --backend both --repeat 2

# Strategy-equality gate: the StockExchange rewritings must be identical
# (sizes + canonical keys + members) under sequential and threaded
# frontier scheduling; exits non-zero on any divergence.
strategy-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/strategy_smoke.py

# Bounded differential-fuzzing gate (seconds, not minutes): a fixed-seed
# window of generated linear/sticky/sticky-join triples must satisfy all
# three oracles — rewrite-vs-chase, backend agreement, and byte-identical
# rewritings across scheduling strategies + a store round-trip.  The
# nightly CI job runs the same command with a date-derived seed and a
# much larger case count.
fuzz-smoke:
	$(REPRO) fuzz --seed 0 --cases 5 --quiet

# Serving gate: the multi-tenant HTTP front end over a real socket must
# return answers byte-identical to the in-process path, compile a
# 50-request cold herd exactly once (single-flight coalescing) and serve
# the warm repeat from the answer cache.
serve-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/serve_smoke.py

# Standing-query gate: subscribe over a real socket, mutate the tenant's
# facts, poll the cursor (query-string style) and require the returned
# answer delta to compose — byte-identically — to a fresh /answer of the
# same query; then unsubscribe and require stale polls to 404.
subscribe-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/subscribe_smoke.py

# Chaos gate (seconds, not minutes): a fixed-seed window of
# fault-injection cases — compile stalls, mid-compile kills, backend
# errors, store/checkpoint write failures — against the full serving
# stack.  Invariants: no response outlives its deadline (+epsilon), warm
# traffic is never starved, every disturbance maps to a classified
# error, and the service converges back to byte-identical answers once
# the faults stop.  The nightly CI job runs the same command with a
# date-derived seed and a larger case count.
chaos-smoke:
	$(REPRO) chaos --seed 0 --cases 6 --quiet

# Perf gate (seconds, not minutes): strategy="auto" must produce
# byte-identical rewritings to the sequential baseline on the paper's
# running example, and the tuple-encoded canonical-key kernel must not be
# slower than the object-walking reference it replaced.  The exhaustive
# hot-path benchmark (all Table 1 workloads + generated triples,
# homomorphism and MGU paths, the autotuner epsilon invariant) is
# benchmarks/bench_hotpaths.py under `make bench-json`.
perf-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/perf_smoke.py

bench:
	$(PYTEST) -q benchmarks

# Machine-readable perf tracking (see docs/BENCHMARKS.md).  Non-gating in
# CI; the JSONs are uploaded as artifacts: compilation (cold sequential vs
# cold parallel vs intra-query chunked vs warm) and end-to-end answering
# on both backends.
bench-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/bench_parallel_compile.py --output BENCH_parallel.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/bench_answering.py --output BENCH_answering.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/bench_scaling.py --output BENCH_scaling.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/bench_serving.py --output BENCH_serving.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) \
	    benchmarks/bench_hotpaths.py --output BENCH_hotpaths.json

table1:
	$(REPRO) table1
